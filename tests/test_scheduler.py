"""Tests for the multi-job cluster scheduler (repro.scheduler).

Covers the engine's event sweep (arrivals, completions, fault-driven
descheduling, preemption, restart debt), the policy zoo, the workload
generator, and two property-based invariants:

* **conservation** -- for every job, productive + waiting + restart hours
  partition its wall-clock time in the system, across random traces,
  workloads and policies;
* **goodput equivalence** -- the single-job scheduler path reproduces the
  classic :class:`GoodputSimulator` accounting exactly (compared against a
  verbatim port of the pre-scheduler replay loop).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.trace import FaultEvent, FaultTrace
from repro.hbd import BigSwitchHBD, InfiniteHBDArchitecture, NVLHBD
from repro.scheduler import (
    ClusterScheduler,
    JobSpec,
    WorkloadConfig,
    generate_workload,
    policy_by_name,
    schedule_comparison,
)
from repro.scheduler.policies import (
    FifoPolicy,
    ShortestRemainingPolicy,
    SmallestFirstPolicy,
)
from repro.simulation.goodput import GoodputConfig, GoodputReport, GoodputSimulator


def quiet_trace(n_nodes=10, days=10, events=(), gpus_per_node=4):
    return FaultTrace(
        n_nodes=n_nodes,
        duration_days=days,
        events=list(events),
        gpus_per_node=gpus_per_node,
    )


def run_jobs(jobs, events=(), policy="fifo", preemptive=False, horizon=None, **trace_kwargs):
    trace = quiet_trace(events=events, **trace_kwargs)
    return ClusterScheduler(
        BigSwitchHBD(4),
        trace.interval_timeline(),
        jobs,
        policy=policy_by_name(policy, preemptive),
        horizon_hours=horizon,
    ).run()


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            JobSpec(name="a", gpus=10, tp_size=4)
        with pytest.raises(ValueError, match="positive"):
            JobSpec(name="a", gpus=4, tp_size=4, work_hours=0.0)
        with pytest.raises(ValueError, match="submit_hour"):
            JobSpec(name="a", gpus=4, tp_size=4, submit_hour=-1.0)
        with pytest.raises(ValueError, match="name"):
            JobSpec(name="", gpus=4, tp_size=4)

    def test_round_trip(self):
        job = JobSpec(name="a", gpus=64, tp_size=32, work_hours=12.5, submit_hour=3.0)
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            JobSpec.from_dict({"name": "a", "gpus": 4, "tp_size": 4, "gpu": 4})


class TestPolicies:
    def test_policy_by_name(self):
        assert isinstance(policy_by_name("fifo"), FifoPolicy)
        assert isinstance(policy_by_name("smallest-first"), SmallestFirstPolicy)
        srtf = policy_by_name("shortest-remaining", preemptive=True)
        assert isinstance(srtf, ShortestRemainingPolicy)
        assert srtf.preemptive

    def test_unknown_policy_suggests(self):
        with pytest.raises(KeyError, match="did you mean"):
            policy_by_name("fifoo")


class TestWorkloadGenerator:
    def test_deterministic(self):
        config = WorkloadConfig(n_jobs=20, seed=7, tp_size=8, max_gpus=128)
        assert generate_workload(config) == generate_workload(config)

    def test_shapes(self):
        config = WorkloadConfig(n_jobs=50, seed=1, tp_size=8, max_gpus=64)
        jobs = generate_workload(config)
        assert len(jobs) == 50
        assert jobs[0].submit_hour == 0.0
        submits = [job.submit_hour for job in jobs]
        assert submits == sorted(submits)
        for job in jobs:
            assert job.gpus % 8 == 0
            assert 8 <= job.gpus <= 64
            assert job.work_hours > 0

    def test_distinct_seeds_differ(self):
        a = generate_workload(WorkloadConfig(n_jobs=10, seed=1))
        b = generate_workload(WorkloadConfig(n_jobs=10, seed=2))
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadConfig(max_gpus=16, tp_size=32)


class TestEngineBasics:
    def test_single_job_completes_on_quiet_cluster(self):
        report = run_jobs([JobSpec(name="a", gpus=8, tp_size=4, work_hours=10.0)])
        job = report.jobs[0]
        assert job.finished
        assert job.completion_hour == pytest.approx(10.0)
        assert job.productive_hours == pytest.approx(10.0)
        assert job.waiting_hours == 0.0
        assert report.all_finished

    def test_capacity_sharing(self):
        # 40-GPU cluster: two 24-GPU jobs cannot overlap, a + 8-GPU one can.
        jobs = [
            JobSpec(name="a", gpus=24, tp_size=4, work_hours=10.0),
            JobSpec(name="b", gpus=24, tp_size=4, work_hours=5.0, submit_hour=1.0),
            JobSpec(name="c", gpus=8, tp_size=4, work_hours=2.0, submit_hour=1.0),
        ]
        report = run_jobs(jobs)
        by_name = {job.name: job for job in report.jobs}
        assert by_name["a"].completion_hour == pytest.approx(10.0)
        # FIFO blocks head-of-line: c waits behind b even though it fits.
        assert by_name["b"].completion_hour == pytest.approx(15.0)
        assert by_name["c"].first_start_hour == pytest.approx(10.0)
        assert by_name["c"].queueing_delay_hours == pytest.approx(9.0)

    def test_smallest_first_backfills(self):
        jobs = [
            JobSpec(name="a", gpus=24, tp_size=4, work_hours=10.0),
            JobSpec(name="b", gpus=24, tp_size=4, work_hours=5.0, submit_hour=1.0),
            JobSpec(name="c", gpus=8, tp_size=4, work_hours=2.0, submit_hour=1.0),
        ]
        report = run_jobs(jobs, policy="smallest-first")
        by_name = {job.name: job for job in report.jobs}
        assert by_name["c"].completion_hour == pytest.approx(3.0)
        assert by_name["b"].completion_hour == pytest.approx(15.0)

    def test_preemptive_srtf_preempts_and_charges_overhead(self):
        jobs = [
            JobSpec(name="long", gpus=24, tp_size=4, work_hours=10.0),
            JobSpec(name="short", gpus=24, tp_size=4, work_hours=5.0, submit_hour=1.0),
        ]
        report = run_jobs(jobs, policy="shortest-remaining", preemptive=True)
        by_name = {job.name: job for job in report.jobs}
        assert by_name["short"].completion_hour == pytest.approx(6.0)
        assert by_name["long"].preemptions == 1
        # Checkpoint-aware preemption: only the restart overhead is repaid.
        assert by_name["long"].restart_hours == pytest.approx(0.25)
        assert by_name["long"].completion_hour == pytest.approx(15.25)

    def test_non_preemptive_policies_let_running_jobs_finish(self):
        jobs = [
            JobSpec(name="long", gpus=24, tp_size=4, work_hours=10.0),
            JobSpec(name="short", gpus=24, tp_size=4, work_hours=5.0, submit_hour=1.0),
        ]
        report = run_jobs(jobs, policy="shortest-remaining", preemptive=False)
        by_name = {job.name: job for job in report.jobs}
        assert by_name["long"].completion_hour == pytest.approx(10.0)
        assert by_name["long"].preemptions == 0

    def test_fault_descheduling_waits_without_extra_charge(self):
        # The job needs the whole cluster; one faulty node stalls it.
        events = [FaultEvent(node_id=0, start_hour=2.0, end_hour=5.0)]
        jobs = [JobSpec(name="a", gpus=40, tp_size=4, work_hours=10.0)]
        report = run_jobs(jobs, events=events)
        job = report.jobs[0]
        assert job.waiting_hours == pytest.approx(3.0)
        assert job.restart_hours == 0.0
        assert job.restart_charged_hours == 0.0
        assert job.completion_hour == pytest.approx(13.0)

    def test_fault_arrival_charges_expected_restart_debt(self):
        # Job keeps running (8 of 40 GPUs); the arrival charges its share.
        events = [FaultEvent(node_id=9, start_hour=2.0, end_hour=5.0)]
        jobs = [JobSpec(name="a", gpus=8, tp_size=4, work_hours=10.0)]
        report = run_jobs(jobs, events=events)
        job = report.jobs[0]
        expected_debt = (8 / 40) * (1.0 / 2.0 + 0.25)
        assert job.impacting_faults == pytest.approx(0.2)
        assert job.restart_hours == pytest.approx(expected_debt)
        assert job.completion_hour == pytest.approx(10.0 + expected_debt)

    def test_fault_active_at_t0_not_charged(self):
        events = [FaultEvent(node_id=9, start_hour=0.0, end_hour=5.0)]
        jobs = [JobSpec(name="a", gpus=8, tp_size=4, work_hours=10.0)]
        report = run_jobs(jobs, events=events)
        job = report.jobs[0]
        assert job.impacting_faults == 0.0
        assert job.completion_hour == pytest.approx(10.0)

    def test_horizon_cuts_unfinished_jobs(self):
        jobs = [
            JobSpec(name="a", gpus=8, tp_size=4, work_hours=100.0),
            JobSpec(name="late", gpus=8, tp_size=4, work_hours=1.0, submit_hour=500.0),
        ]
        report = run_jobs(jobs, horizon=24.0)
        by_name = {job.name: job for job in report.jobs}
        assert not by_name["a"].finished
        assert by_name["a"].productive_hours == pytest.approx(24.0)
        assert by_name["a"].end_hour == pytest.approx(24.0)
        # Submitted after the horizon: never entered the system.
        assert by_name["late"].wall_clock_hours == 0.0
        assert report.finished_jobs == 0

    def test_strict_fifo_blocks_backfill_past_descheduled_head(self):
        # Regression: when a fault descheduled the FIFO head, a younger job
        # used to backfill and (being non-preemptively protected) starve the
        # head long after capacity recovered.  The descheduled head must keep
        # blocking admissions.
        events = [FaultEvent(node_id=0, start_hour=10.0, end_hour=20.0)]
        jobs = [
            JobSpec(name="head", gpus=40, tp_size=4, work_hours=110.0),
            JobSpec(name="young", gpus=16, tp_size=4, work_hours=100.0, submit_hour=1.0),
        ]
        report = run_jobs(jobs, events=events)
        by_name = {job.name: job for job in report.jobs}
        # Head runs 0-10, waits out the fault 10-20, resumes 20-120.
        assert by_name["head"].completion_hour == pytest.approx(120.0)
        assert by_name["head"].waiting_hours == pytest.approx(10.0)
        # The younger job is only admitted once the head finishes.
        assert by_name["young"].first_start_hour == pytest.approx(120.0)

    def test_completion_exactly_at_horizon_counts(self):
        # Regression: the loop used to cut off at t >= horizon before the
        # completion pass, silently dropping work that finished on the dot.
        report = run_jobs(
            [JobSpec(name="a", gpus=8, tp_size=4, work_hours=24.0)], horizon=24.0
        )
        job = report.jobs[0]
        assert job.finished
        assert job.completion_hour == pytest.approx(24.0)
        assert report.finished_jobs == 1

    def test_never_entered_jobs_do_not_stretch_makespan(self):
        # Regression: a job submitted after the horizon used to extend the
        # makespan (and dilute cluster goodput) by its submit hour.
        jobs = [
            JobSpec(name="a", gpus=8, tp_size=4, work_hours=10.0),
            JobSpec(name="late", gpus=8, tp_size=4, work_hours=1.0, submit_hour=500.0),
        ]
        report = run_jobs(jobs, horizon=24.0)
        # Only job "a" enters the system; it spans [0, 10].
        assert report.makespan_hours == pytest.approx(10.0)
        assert report.cluster_goodput == pytest.approx(10.0 * 8 / (40 * 10.0))

    def test_preemption_charged_even_when_fault_arrives_same_instant(self):
        # Regression: an unrelated fault arrival sharing the preemption's
        # timestamp used to suppress the restart-overhead charge.
        events = [FaultEvent(node_id=9, start_hour=1.0, end_hour=2.0)]
        jobs = [
            JobSpec(name="long", gpus=24, tp_size=4, work_hours=10.0),
            JobSpec(name="short", gpus=24, tp_size=4, work_hours=5.0, submit_hour=1.0),
        ]
        report = run_jobs(
            jobs, events=events, policy="shortest-remaining", preemptive=True
        )
        by_name = {job.name: job for job in report.jobs}
        assert by_name["long"].preemptions == 1
        assert by_name["long"].restart_charged_hours >= 0.25

    def test_jobs_run_past_trace_end(self):
        # 1-day trace, 30 hours of work: the tail runs on the fault-free
        # cluster beyond the traced window.
        report = run_jobs(
            [JobSpec(name="a", gpus=8, tp_size=4, work_hours=30.0)], days=1
        )
        assert report.jobs[0].completion_hour == pytest.approx(30.0)

    def test_unbounded_job_requires_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            run_jobs([JobSpec(name="a", gpus=8, tp_size=4, work_hours=None)])

    def test_infeasible_job_requires_horizon(self):
        # NVL-8 units hold 8 GPUs: a TP-16 group can never form, so the job
        # is unschedulable even on the fault-free cluster.
        trace = quiet_trace()
        arch = NVLHBD(8, gpus_per_node=4)
        jobs = [JobSpec(name="a", gpus=16, tp_size=16, work_hours=1.0)]
        with pytest.raises(ValueError, match="fault-free"):
            ClusterScheduler(arch, trace.interval_timeline(), jobs).run()
        report = ClusterScheduler(
            arch, trace.interval_timeline(), jobs, horizon_hours=24.0
        ).run()
        assert report.jobs[0].waiting_hours == pytest.approx(24.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_jobs([
                JobSpec(name="a", gpus=8, tp_size=4, work_hours=1.0),
                JobSpec(name="a", gpus=8, tp_size=4, work_hours=1.0),
            ])

    def test_job_larger_than_cluster_rejected(self):
        with pytest.raises(ValueError, match="larger than the cluster"):
            run_jobs([JobSpec(name="a", gpus=44, tp_size=4, work_hours=1.0)])

    def test_gpus_per_node_mismatch_rejected(self):
        trace = quiet_trace(gpus_per_node=8)
        with pytest.raises(ValueError, match="GPUs/node"):
            ClusterScheduler(
                BigSwitchHBD(4),
                trace.interval_timeline(),
                [JobSpec(name="a", gpus=8, tp_size=4, work_hours=1.0)],
            )

    def test_schedule_comparison_covers_architectures(self):
        trace = quiet_trace()
        jobs = [JobSpec(name="a", gpus=8, tp_size=4, work_hours=5.0)]
        reports = schedule_comparison(
            [BigSwitchHBD(4), InfiniteHBDArchitecture(k=2, gpus_per_node=4)],
            trace.interval_timeline(),
            jobs,
        )
        assert set(reports) == {"Big-Switch", "InfiniteHBD(K=2)"}
        for report in reports.values():
            assert report.all_finished


class TestClusterReport:
    def test_aggregates(self):
        jobs = [
            JobSpec(name="a", gpus=16, tp_size=4, work_hours=4.0),
            JobSpec(name="b", gpus=16, tp_size=4, work_hours=8.0, submit_hour=2.0),
        ]
        report = run_jobs(jobs)
        assert report.n_jobs == 2
        assert report.makespan_hours == pytest.approx(10.0)
        assert report.mean_jct_hours == pytest.approx((4.0 + 8.0) / 2)
        assert report.mean_queueing_delay_hours == 0.0
        expected_gpu_hours = 4.0 * 16 + 8.0 * 16
        assert report.productive_gpu_hours == pytest.approx(expected_gpu_hours)
        assert report.cluster_goodput == pytest.approx(expected_gpu_hours / (40 * 10.0))
        assert 0.0 <= report.cluster_goodput <= report.cluster_utilization <= 1.0

    def test_to_dict_round_trips_jobs(self):
        report = run_jobs([JobSpec(name="a", gpus=8, tp_size=4, work_hours=2.0)])
        data = report.to_dict()
        assert data["finished_jobs"] == 1
        assert data["jobs"][0]["name"] == "a"
        assert data["jobs"][0]["jct_hours"] == pytest.approx(2.0)


# --------------------------------------------------------------- properties
@st.composite
def fault_traces(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    duration_days = draw(st.integers(min_value=1, max_value=4))
    duration_hours = duration_days * 24.0
    n_events = draw(st.integers(min_value=0, max_value=10))
    events = []
    for _ in range(n_events):
        node = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        start = draw(
            st.floats(min_value=0.0, max_value=duration_hours, allow_nan=False)
        )
        length = draw(st.floats(min_value=0.1, max_value=36.0, allow_nan=False))
        events.append(
            FaultEvent(node_id=node, start_hour=start, end_hour=start + length)
        )
    return FaultTrace(
        n_nodes=n_nodes,
        duration_days=duration_days,
        events=events,
        gpus_per_node=4,
    )


@st.composite
def workloads(draw, n_nodes):
    total = n_nodes * 4
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    jobs = []
    for i in range(n_jobs):
        tp = draw(st.sampled_from([1, 2, 4]))
        groups = draw(st.integers(min_value=1, max_value=max(1, total // tp)))
        jobs.append(
            JobSpec(
                name=f"j{i}",
                gpus=min(groups * tp, total // tp * tp),
                tp_size=tp,
                work_hours=draw(st.floats(min_value=0.5, max_value=48.0)),
                submit_hour=draw(st.floats(min_value=0.0, max_value=72.0)),
                checkpoint_interval_hours=draw(st.floats(min_value=0.25, max_value=4.0)),
                restart_overhead_hours=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    return jobs


class TestConservationInvariant:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_time_buckets_partition_wall_clock(self, data):
        trace = data.draw(fault_traces())
        jobs = data.draw(workloads(trace.n_nodes))
        policy = data.draw(st.sampled_from(["fifo", "smallest-first", "shortest-remaining"]))
        preemptive = data.draw(st.booleans())
        horizon = trace.duration_hours * 3.0

        report = ClusterScheduler(
            BigSwitchHBD(4),
            trace.interval_timeline(),
            jobs,
            policy=policy_by_name(policy, preemptive),
            horizon_hours=horizon,
        ).run()

        for job in report.jobs:
            buckets = job.productive_hours + job.waiting_hours + job.restart_hours
            assert buckets == pytest.approx(job.wall_clock_hours, abs=1e-6), (
                f"{job.name}: {buckets} != wall clock {job.wall_clock_hours} "
                f"under {policy} (preemptive={preemptive})"
            )
            if job.finished:
                assert job.productive_hours == pytest.approx(
                    job.work_hours, abs=1e-6
                )
                assert job.first_start_hour is not None
                assert job.completion_hour >= job.submit_hour
            assert job.productive_hours >= 0
            assert job.waiting_hours >= 0
            assert job.restart_hours >= 0


def _reference_goodput(architecture, trace, config, n_nodes=None):
    """Verbatim port of the pre-scheduler GoodputSimulator replay loop."""
    nodes = n_nodes if n_nodes is not None else trace.n_nodes
    timeline = trace.interval_timeline(nodes)
    job_nodes_fraction = config.job_gpus / (nodes * architecture.gpus_per_node)
    restart_cost_per_hit = (
        config.checkpoint_interval_hours / 2.0 + config.restart_overhead_hours
    )
    productive = waiting = restart = 0.0
    impacting = 0.0
    cache = {}
    previous = timeline.intervals[0].nodes if timeline.intervals else frozenset()
    for interval in timeline.intervals:
        faults = interval.nodes
        usable = cache.get(faults)
        if usable is None:
            usable = architecture.usable_gpus(nodes, faults, config.tp_size)
            cache[faults] = usable
        running = usable >= config.job_gpus
        new_faults = faults - previous
        if running and new_faults:
            expected_hits = len(new_faults) * job_nodes_fraction
            impacting += expected_hits
            restart += expected_hits * restart_cost_per_hit
        if running:
            productive += interval.duration_hours
        else:
            waiting += interval.duration_hours
        previous = faults
    return GoodputReport(
        total_hours=timeline.duration_hours,
        productive_hours=productive,
        waiting_hours=waiting,
        restart_hours=min(restart, productive),
        job_impacting_faults=impacting,
    )


class TestSingleJobReproducesGoodput:
    ARCHITECTURES = (
        BigSwitchHBD(4),
        InfiniteHBDArchitecture(k=2, gpus_per_node=4),
        NVLHBD(8, gpus_per_node=4),
    )

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_wrapper_matches_reference(self, data):
        trace = data.draw(fault_traces())
        architecture = data.draw(st.sampled_from(self.ARCHITECTURES))
        total = trace.n_nodes * 4
        tp = data.draw(st.sampled_from([1, 2, 4]))
        groups = data.draw(st.integers(min_value=1, max_value=total // tp))
        config = GoodputConfig(
            job_gpus=groups * tp,
            tp_size=tp,
            checkpoint_interval_hours=data.draw(
                st.floats(min_value=0.25, max_value=4.0)
            ),
            restart_overhead_hours=data.draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        actual = GoodputSimulator(architecture, trace, config).run()
        expected = _reference_goodput(architecture, trace, config)

        assert actual.total_hours == expected.total_hours
        assert actual.waiting_hours == pytest.approx(expected.waiting_hours, abs=1e-9)
        assert actual.productive_hours == pytest.approx(
            expected.productive_hours, abs=1e-9
        )
        assert actual.restart_hours == pytest.approx(expected.restart_hours, abs=1e-9)
        assert actual.job_impacting_faults == pytest.approx(
            expected.job_impacting_faults, abs=1e-12
        )
        assert actual.goodput == pytest.approx(expected.goodput, abs=1e-12)

    def test_deprecated_sample_interval_warns(self):
        with pytest.warns(DeprecationWarning, match="sample_interval_hours"):
            GoodputConfig(job_gpus=64, tp_size=32, sample_interval_hours=6.0)

    def test_deprecated_sample_interval_absent_from_repr(self):
        # Regression: the deprecated knob used to leak into repr (and any
        # dump built from it) even though it has no effect.
        config = GoodputConfig(job_gpus=64, tp_size=32)
        assert "sample_interval_hours" not in repr(config)
        with pytest.warns(DeprecationWarning):
            noisy = GoodputConfig(job_gpus=64, tp_size=32, sample_interval_hours=6.0)
        assert "sample_interval_hours" not in repr(noisy)
