"""Tests for dynamic GPU-ring construction over the K-Hop topology."""

import pytest

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.node import make_nodes
from repro.core.ring_builder import GPURing, RingBuilder, RingConstructionError
from repro.hardware.ocstrx import PathState


def build_setup(n_nodes=16, k=2, r=4, ring=True):
    topo = KHopRingTopology(
        KHopTopologyConfig(n_nodes=n_nodes, k=k, gpus_per_node=r, ring=ring)
    )
    nodes = make_nodes(n_nodes, n_gpus=r, n_bundles=max(2, k))
    return topo, nodes, RingBuilder(topo, nodes)


class TestValidation:
    def test_node_count_must_match(self):
        topo = KHopRingTopology(KHopTopologyConfig(n_nodes=8, k=2))
        nodes = make_nodes(7)
        with pytest.raises(ValueError):
            RingBuilder(topo, nodes)

    def test_nodes_must_be_ordered(self):
        topo = KHopRingTopology(KHopTopologyConfig(n_nodes=3, k=2))
        nodes = make_nodes(3)
        with pytest.raises(ValueError):
            RingBuilder(topo, list(reversed(nodes)))

    def test_validate_rejects_duplicates(self):
        _, _, builder = build_setup()
        with pytest.raises(RingConstructionError):
            builder.validate_line([0, 1, 1])

    def test_validate_rejects_unknown_node(self):
        _, _, builder = build_setup()
        with pytest.raises(RingConstructionError):
            builder.validate_line([0, 1, 99])

    def test_validate_rejects_failed_node(self):
        _, nodes, builder = build_setup()
        nodes[2].fail()
        with pytest.raises(RingConstructionError):
            builder.validate_line([1, 2, 3])

    def test_validate_rejects_nodes_beyond_k_hops(self):
        _, _, builder = build_setup(k=2)
        with pytest.raises(RingConstructionError):
            builder.validate_line([0, 3])

    def test_validate_accepts_backup_link_distance(self):
        _, _, builder = build_setup(k=2)
        builder.validate_line([0, 2, 4])  # distance-2 hops use backup links


class TestBuildRing:
    def test_ring_size_is_nodes_times_gpus(self):
        _, _, builder = build_setup(r=4)
        ring = builder.build_ring([0, 1, 2, 3])
        assert ring.size == 16
        assert ring.node_order == (0, 1, 2, 3)

    def test_ring_gpu_order_contains_every_gpu_once(self):
        _, nodes, builder = build_setup(r=4)
        ring = builder.build_ring([0, 1, 2])
        expected = {g.gpu_id for n in nodes[:3] for g in n.gpus}
        assert set(ring.gpu_order) == expected
        assert len(ring.gpu_order) == len(set(ring.gpu_order))

    def test_endpoint_bundles_loop_back(self):
        _, nodes, builder = build_setup()
        builder.build_ring([0, 1, 2, 3])
        assert nodes[0].bundle(0).state is PathState.LOOPBACK
        assert nodes[3].bundle(1).state is PathState.LOOPBACK

    def test_intermediate_bundles_use_external_paths(self):
        _, nodes, builder = build_setup()
        builder.build_ring([0, 1, 2, 3])
        assert nodes[1].bundle(0).state is PathState.EXTERNAL_1
        assert nodes[1].bundle(1).state is PathState.EXTERNAL_1

    def test_reconfiguration_latency_within_spec(self):
        _, _, builder = build_setup()
        ring = builder.build_ring([0, 1, 2, 3])
        assert 60.0 <= ring.reconfiguration_latency_us <= 80.0

    def test_ring_bandwidth_is_full_bundle_rate(self):
        _, _, builder = build_setup()
        ring = builder.build_ring([0, 1, 2])
        assert ring.bandwidth_gbps == pytest.approx(6400.0)

    def test_single_node_ring(self):
        _, nodes, builder = build_setup()
        ring = builder.build_ring([5])
        assert ring.size == 4
        assert nodes[5].bundle(0).state is PathState.LOOPBACK

    def test_neighbors_of_wraps_around(self):
        _, _, builder = build_setup()
        ring = builder.build_ring([0, 1])
        first = ring.gpu_order[0]
        prev_gpu, next_gpu = ring.neighbors_of(first)
        assert prev_gpu == ring.gpu_order[-1]
        assert next_gpu == ring.gpu_order[1]

    def test_arbitrary_ring_sizes_supported(self):
        """Rings of any node count can be built anywhere on the topology."""
        _, _, builder = build_setup(n_nodes=32)
        for size in (1, 2, 3, 5, 8, 13):
            ring = builder.build_ring(list(range(10, 10 + size)))
            assert ring.size == size * 4


class TestFaultBypass:
    def test_bypass_single_fault(self):
        _, nodes, builder = build_setup(k=2)
        nodes[2].fail()
        ring = builder.build_ring_bypassing_faults(start=0, n_nodes=4)
        assert ring.node_order == (0, 1, 3, 4)

    def test_bypass_requires_gap_within_k(self):
        _, nodes, builder = build_setup(k=2)
        nodes[2].fail()
        nodes[3].fail()
        with pytest.raises(RingConstructionError):
            builder.build_ring_bypassing_faults(start=0, n_nodes=4)

    def test_bypass_with_k3_handles_two_consecutive_faults(self):
        _, nodes, builder = build_setup(k=3)
        nodes[2].fail()
        nodes[3].fail()
        ring = builder.build_ring_bypassing_faults(start=0, n_nodes=4)
        assert ring.node_order == (0, 1, 4, 5)

    def test_bypass_insufficient_healthy_nodes(self):
        _, nodes, builder = build_setup(n_nodes=4)
        nodes[1].fail()
        nodes[2].fail()
        with pytest.raises(RingConstructionError):
            builder.build_ring_bypassing_faults(start=0, n_nodes=4)

    def test_bypass_zero_nodes_rejected(self):
        _, _, builder = build_setup()
        with pytest.raises(RingConstructionError):
            builder.build_ring_bypassing_faults(start=0, n_nodes=0)

    def test_fault_isolation_is_node_level(self):
        """A fault only removes its own node from the ring (node-level radius)."""
        _, nodes, builder = build_setup(n_nodes=16, k=2)
        nodes[5].fail()
        ring = builder.build_ring_bypassing_faults(start=0, n_nodes=8)
        assert 5 not in ring.node_order
        assert ring.size == 32
        healthy_used = set(ring.node_order)
        assert healthy_used == {0, 1, 2, 3, 4, 6, 7, 8}
