"""Tests for the job-goodput simulator."""

import pytest

from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.trace import FaultEvent, FaultTrace
from repro.hbd import BigSwitchHBD, InfiniteHBDArchitecture, NVLHBD, SiPRingHBD
from repro.simulation.goodput import (
    GoodputConfig,
    GoodputReport,
    GoodputSimulator,
    goodput_comparison,
)


@pytest.fixture(scope="module")
def trace4():
    trace8 = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=400, duration_days=60, seed=77)
    )
    return convert_trace_8gpu_to_4gpu(trace8, seed=77)


class TestGoodputConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GoodputConfig(job_gpus=0, tp_size=32)
        with pytest.raises(ValueError):
            GoodputConfig(job_gpus=100, tp_size=32)
        with pytest.raises(ValueError):
            GoodputConfig(job_gpus=64, tp_size=32, checkpoint_interval_hours=0)
        with pytest.raises(ValueError):
            GoodputConfig(job_gpus=64, tp_size=32, restart_overhead_hours=-1)


class TestGoodputReport:
    def test_ratios(self):
        report = GoodputReport(
            total_hours=100.0,
            productive_hours=90.0,
            waiting_hours=10.0,
            restart_hours=5.0,
            job_impacting_faults=3,
        )
        assert report.goodput == pytest.approx(0.85)
        assert report.waiting_fraction == pytest.approx(0.10)

    def test_zero_duration(self):
        report = GoodputReport(0.0, 0.0, 0.0, 0.0, 0)
        assert report.goodput == 0.0
        assert report.waiting_fraction == 0.0


class TestGoodputSimulator:
    def test_no_faults_full_goodput(self):
        trace = FaultTrace(n_nodes=100, duration_days=10, events=[], gpus_per_node=4)
        config = GoodputConfig(job_gpus=320, tp_size=32)
        report = GoodputSimulator(BigSwitchHBD(4), trace, config).run()
        assert report.goodput == pytest.approx(1.0)
        assert report.waiting_hours == 0.0
        assert report.job_impacting_faults == 0

    def test_permanent_capacity_loss_causes_waiting(self):
        # 10 nodes, a job needing every GPU, one node down for the whole trace.
        events = [FaultEvent(node_id=0, start_hour=0.0, end_hour=240.0)]
        trace = FaultTrace(n_nodes=10, duration_days=10, events=events, gpus_per_node=4)
        config = GoodputConfig(job_gpus=40, tp_size=4)
        report = GoodputSimulator(BigSwitchHBD(4), trace, config).run()
        assert report.waiting_fraction == pytest.approx(1.0)
        assert report.goodput == 0.0

    def test_restart_charged_on_new_fault(self):
        events = [FaultEvent(node_id=0, start_hour=24.0, end_hour=48.0)]
        trace = FaultTrace(n_nodes=10, duration_days=10, events=events, gpus_per_node=4)
        # Job only needs 8 of 40 GPUs, so it keeps running but may be hit.
        config = GoodputConfig(job_gpus=8, tp_size=4)
        report = GoodputSimulator(BigSwitchHBD(4), trace, config).run()
        assert report.waiting_hours == 0.0
        # Expected-value accounting: one arrival, job share 8/40.
        assert report.job_impacting_faults == pytest.approx(0.2)
        assert report.restart_hours == pytest.approx(0.2 * (0.5 + 0.25))
        assert report.goodput < 1.0

    def test_fault_active_at_start_not_charged_as_new(self):
        # Regression: a fault spanning t=0 used to trigger a restart charge
        # the job never experienced (previous_faults started empty).
        events = [FaultEvent(node_id=0, start_hour=0.0, end_hour=48.0)]
        trace = FaultTrace(n_nodes=10, duration_days=10, events=events, gpus_per_node=4)
        config = GoodputConfig(job_gpus=8, tp_size=4)
        report = GoodputSimulator(BigSwitchHBD(4), trace, config).run()
        assert report.job_impacting_faults == 0.0
        assert report.restart_hours == 0.0
        assert report.goodput == pytest.approx(1.0)

    def test_expected_impacts_accumulate_as_float(self):
        # Regression: per-step rounding counted expected_hits=0.5 as 0 hits
        # but 1.5 as 2.  Three separate arrivals at half the cluster each
        # must accumulate to exactly 1.5 expected impacting faults.
        events = [
            FaultEvent(node_id=0, start_hour=24.0, end_hour=36.0),
            FaultEvent(node_id=1, start_hour=72.0, end_hour=84.0),
            FaultEvent(node_id=2, start_hour=120.0, end_hour=132.0),
        ]
        trace = FaultTrace(n_nodes=10, duration_days=10, events=events, gpus_per_node=4)
        # Job takes half the cluster: each arrival contributes 0.5 hits.
        config = GoodputConfig(job_gpus=20, tp_size=4)
        report = GoodputSimulator(BigSwitchHBD(4), trace, config).run()
        assert report.job_impacting_faults == pytest.approx(1.5)
        assert report.restart_hours == pytest.approx(1.5 * (0.5 + 0.25))

    def test_waiting_hours_are_exact_interval_durations(self):
        # A 90-minute full outage between hourly grid points is accounted
        # exactly by the event-driven replay.
        events = [
            FaultEvent(node_id=n, start_hour=10.25, end_hour=11.75)
            for n in range(10)
        ]
        trace = FaultTrace(n_nodes=10, duration_days=10, events=events, gpus_per_node=4)
        config = GoodputConfig(job_gpus=40, tp_size=4)
        report = GoodputSimulator(BigSwitchHBD(4), trace, config).run()
        assert report.waiting_hours == pytest.approx(1.5)
        assert report.total_hours == pytest.approx(240.0)

    def test_validation(self, trace4):
        with pytest.raises(ValueError):
            GoodputSimulator(NVLHBD(72, gpus_per_node=8), trace4,
                             GoodputConfig(job_gpus=64, tp_size=32))
        with pytest.raises(ValueError):
            GoodputSimulator(BigSwitchHBD(4), trace4,
                             GoodputConfig(job_gpus=64, tp_size=32),
                             n_nodes=trace4.n_nodes + 1)
        with pytest.raises(ValueError):
            GoodputSimulator(BigSwitchHBD(4), trace4,
                             GoodputConfig(job_gpus=10**7, tp_size=32))

    def test_goodput_bounded(self, trace4):
        config = GoodputConfig(job_gpus=2560, tp_size=32)
        report = GoodputSimulator(
            InfiniteHBDArchitecture(k=2, gpus_per_node=4), trace4, config, n_nodes=720
        ).run()
        assert 0.0 <= report.goodput <= 1.0
        assert report.total_hours == pytest.approx(60 * 24, rel=0.01)


class TestGoodputComparison:
    def test_infinitehbd_goodput_at_least_nvl(self, trace4):
        """Fault isolation translates into equal or better goodput."""
        config = GoodputConfig(job_gpus=2560, tp_size=32)
        reports = goodput_comparison(
            [
                InfiniteHBDArchitecture(k=3, gpus_per_node=4),
                NVLHBD(36, gpus_per_node=4),
                SiPRingHBD(gpus_per_node=4),
            ],
            trace4,
            config,
            n_nodes=720,
        )
        inf = reports["InfiniteHBD(K=3)"]
        assert inf.goodput >= reports["NVL-36"].goodput
        assert inf.goodput >= reports["SiP-Ring"].goodput
        assert inf.waiting_fraction <= reports["NVL-36"].waiting_fraction
