"""Tests for the synthetic fault-trace generator (Appendix A calibration)."""

import pytest

from repro.faults.synthetic import (
    SyntheticTraceConfig,
    _lognormal_sigma,
    generate_synthetic_trace,
)


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = SyntheticTraceConfig()
        assert config.duration_days == 348
        assert config.gpus_per_node == 8
        assert config.mean_fault_ratio == pytest.approx(0.0233)
        assert config.p99_fault_ratio == pytest.approx(0.0722)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_nodes=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(mean_fault_ratio=0.0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(mean_fault_ratio=0.05, p99_fault_ratio=0.01)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(ar1_coefficient=1.0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(mean_repair_days=0.5)


class TestLognormalSigma:
    def test_matches_target_ratio(self):
        sigma = _lognormal_sigma(0.0233, 0.0722)
        import math
        ratio = math.exp(2.326347874 * sigma - sigma * sigma / 2.0)
        assert ratio == pytest.approx(0.0722 / 0.0233, rel=1e-3)

    def test_degenerate_ratio(self):
        assert _lognormal_sigma(0.02, 0.02) == 0.0


class TestGeneratedTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_synthetic_trace(SyntheticTraceConfig(seed=42))

    def test_shape(self, trace):
        assert trace.n_nodes == 400
        assert trace.duration_days == 348
        assert trace.gpus_per_node == 8
        assert len(trace) > 0

    def test_mean_fault_ratio_calibrated(self, trace):
        stats = trace.statistics()
        assert stats.mean_fault_ratio == pytest.approx(0.0233, rel=0.15)

    def test_p99_fault_ratio_in_range(self, trace):
        stats = trace.statistics()
        assert 0.03 <= stats.p99_fault_ratio <= 0.12

    def test_heavy_tail(self, trace):
        """p99 must sit well above the mean, as in the production trace."""
        stats = trace.statistics()
        assert stats.p99_fault_ratio > 1.5 * stats.mean_fault_ratio

    def test_events_within_bounds(self, trace):
        for event in trace.events:
            assert 0 <= event.node_id < trace.n_nodes
            assert 0.0 <= event.start_hour < event.end_hour <= trace.duration_hours

    def test_repair_time_positive_and_reasonable(self, trace):
        stats = trace.statistics()
        assert 24.0 <= stats.mean_repair_hours <= 24.0 * 14

    def test_no_overlapping_events_per_node(self, trace):
        per_node = {}
        for event in trace.events:
            per_node.setdefault(event.node_id, []).append(event)
        for events in per_node.values():
            events.sort(key=lambda e: e.start_hour)
            for a, b in zip(events, events[1:]):
                assert a.end_hour <= b.start_hour

    def test_reproducible_with_seed(self):
        config = SyntheticTraceConfig(n_nodes=50, duration_days=30, seed=9)
        a = generate_synthetic_trace(config)
        b = generate_synthetic_trace(config)
        assert a.to_csv() == b.to_csv()

    def test_different_seeds_differ(self):
        a = generate_synthetic_trace(SyntheticTraceConfig(n_nodes=50, duration_days=30, seed=1))
        b = generate_synthetic_trace(SyntheticTraceConfig(n_nodes=50, duration_days=30, seed=2))
        assert a.to_csv() != b.to_csv()

    def test_small_cluster_generation(self):
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=20, duration_days=30, seed=0)
        )
        assert trace.n_nodes == 20
        assert trace.statistics().max_fault_ratio <= 0.5
