"""Tests for the trace-driven cluster simulator and the comparison sweeps."""

import pytest

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.trace import FaultEvent, FaultTrace
from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
    default_architectures,
)
from repro.simulation.cluster import ClusterSimulator, SimulationSeries
from repro.simulation.sweeps import (
    architecture_comparison_over_trace,
    fault_waiting_comparison,
    max_job_scale_comparison,
    waste_ratio_vs_fault_ratio,
)


@pytest.fixture(scope="module")
def trace4():
    source = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=400, duration_days=90, seed=13)
    )
    return convert_trace_8gpu_to_4gpu(source, seed=13)


class TestClusterSimulator:
    def test_requires_matching_gpus_per_node(self, trace4):
        with pytest.raises(ValueError):
            ClusterSimulator(NVLHBD(72, gpus_per_node=8), trace4)

    def test_cannot_exceed_trace_size(self, trace4):
        with pytest.raises(ValueError):
            ClusterSimulator(BigSwitchHBD(4), trace4, n_nodes=trace4.n_nodes + 1)

    def test_series_lengths(self, trace4):
        sim = ClusterSimulator(BigSwitchHBD(4), trace4, n_nodes=720)
        series = sim.run(32)
        assert len(series.times_days) == len(series.waste_ratios)
        assert len(series.usable_gpus) == len(series.times_days)
        assert series.total_gpus == 2880

    def test_waste_ratios_bounded(self, trace4):
        for arch in default_architectures(4):
            series = ClusterSimulator(arch, trace4, n_nodes=720).run(32)
            assert all(0.0 <= w <= 1.0 for w in series.waste_ratios)

    def test_cdf_is_valid(self, trace4):
        series = ClusterSimulator(NVLHBD(72, 4), trace4, n_nodes=720).run(32)
        values, cdf = series.waste_ratio_cdf()
        assert values == sorted(values)
        assert cdf[-1] == pytest.approx(1.0)

    def test_fault_waiting_monotone_in_job_scale(self, trace4):
        series = ClusterSimulator(InfiniteHBDArchitecture(2, 4), trace4, n_nodes=720).run(32)
        small = series.fault_waiting_rate(2000)
        large = series.fault_waiting_rate(2800)
        assert small <= large

    def test_supported_job_scale_availability(self, trace4):
        series = ClusterSimulator(BigSwitchHBD(4), trace4, n_nodes=720).run(32)
        strict = series.supported_job_scale(1.0)
        relaxed = series.supported_job_scale(0.9)
        assert strict <= relaxed
        assert strict == series.min_usable_gpus

    def test_breakdown_at(self, trace4):
        sim = ClusterSimulator(BigSwitchHBD(4), trace4, n_nodes=720)
        breakdown = sim.breakdown_at(0.0, 32)
        assert breakdown.total_gpus == 2880

    def test_invalid_availability(self, trace4):
        series = ClusterSimulator(BigSwitchHBD(4), trace4, n_nodes=720).run(32)
        with pytest.raises(ValueError):
            series.supported_job_scale(0.0)


class TestPaperShapeOverTrace:
    """Qualitative section 6.2 results must hold on the synthetic trace."""

    @pytest.fixture(scope="class")
    def results(self, trace4):
        archs = default_architectures(4)
        return architecture_comparison_over_trace(archs, trace4, tp_size=32, n_nodes=720)

    def test_infinitehbd_k3_matches_big_switch(self, results):
        k3 = results["InfiniteHBD(K=3)"].mean_waste_ratio
        ideal = results["Big-Switch"].mean_waste_ratio
        assert k3 == pytest.approx(ideal, abs=0.002)

    def test_infinitehbd_waste_near_zero(self, results):
        assert results["InfiniteHBD(K=3)"].mean_waste_ratio < 0.01
        assert results["InfiniteHBD(K=2)"].mean_waste_ratio < 0.02

    def test_infinitehbd_much_lower_than_nvl72(self, results):
        """Paper: ~20x lower waste than NVL-72 for TP-32."""
        nvl = results["NVL-72"].mean_waste_ratio
        inf = results["InfiniteHBD(K=3)"].mean_waste_ratio
        assert nvl > 5 * max(inf, 1e-6)

    def test_infinitehbd_much_lower_than_tpuv4(self, results):
        tpu = results["TPUv4"].mean_waste_ratio
        inf = results["InfiniteHBD(K=3)"].mean_waste_ratio
        assert tpu > 3 * max(inf, 1e-6)

    def test_nvl72_waste_close_to_published(self, results):
        """NVL-72 with TP-32 sits near the ~10% fragmentation floor."""
        assert 0.08 <= results["NVL-72"].mean_waste_ratio <= 0.14

    def test_nvl576_better_than_nvl72(self, results):
        assert (
            results["NVL-576"].mean_waste_ratio
            < results["NVL-72"].mean_waste_ratio
        )

    def test_k2_close_to_k3(self, results):
        """Paper: K=2 is almost identical to K=3 at production fault rates."""
        k2 = results["InfiniteHBD(K=2)"].mean_waste_ratio
        k3 = results["InfiniteHBD(K=3)"].mean_waste_ratio
        assert k2 - k3 < 0.01


class TestSweeps:
    def test_waste_vs_fault_ratio_shapes(self):
        archs = [InfiniteHBDArchitecture(3, 4), NVLHBD(72, 4), TPUv4HBD(4)]
        ratios = [0.0, 0.02, 0.05, 0.10]
        curves = waste_ratio_vs_fault_ratio(archs, n_nodes=720, tp_size=32,
                                            fault_ratios=ratios, n_samples=5)
        assert set(curves) == {a.name for a in archs}
        for series in curves.values():
            assert len(series) == len(ratios)
            assert all(0.0 <= w <= 1.0 for w in series)

    def test_infinitehbd_flat_under_faults(self):
        archs = [InfiniteHBDArchitecture(3, 4), SiPRingHBD(4)]
        curves = waste_ratio_vs_fault_ratio(
            archs, n_nodes=720, tp_size=32,
            fault_ratios=[0.0, 0.05, 0.10], n_samples=5,
        )
        assert curves["InfiniteHBD(K=3)"][-1] < 0.02
        assert curves["SiP-Ring"][-1] > curves["InfiniteHBD(K=3)"][-1]

    def test_max_job_scale_comparison(self, trace4):
        archs = [InfiniteHBDArchitecture(2, 4), NVLHBD(36, 4)]
        table = max_job_scale_comparison(archs, trace4, tp_sizes=[16, 32], n_nodes=720)
        for per_tp in table.values():
            assert set(per_tp) == {16, 32}
            for value in per_tp.values():
                assert 0 <= value <= 2880
        assert table["InfiniteHBD(K=2)"][32] >= table["NVL-36"][32]

    def test_fault_waiting_comparison(self, trace4):
        archs = [InfiniteHBDArchitecture(2, 4), NVLHBD(72, 4)]
        table = fault_waiting_comparison(
            archs, trace4, tp_size=32, job_scales=[2304, 2560, 2816], n_nodes=720
        )
        for rates in table.values():
            values = [rates[s] for s in sorted(rates)]
            assert values == sorted(values)
            assert all(0.0 <= v <= 1.0 for v in values)
        assert table["InfiniteHBD(K=2)"][2560] <= table["NVL-72"][2560]
