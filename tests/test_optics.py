"""Tests for the insertion-loss, power and BER optical models (Fig. 10-12)."""

import numpy as np
import pytest

from repro.hardware.optics import (
    BER_TEMPERATURES_C,
    BERModel,
    INDUSTRIAL_BER_THRESHOLD,
    InsertionLossModel,
    OpticalMeasurementCampaign,
    PowerModel,
    REPORTED_TEMPERATURES_C,
)


class TestInsertionLossModel:
    def setup_method(self):
        self.model = InsertionLossModel()
        self.rng = np.random.default_rng(7)

    def test_mean_loss_at_room_temperature(self):
        assert self.model.mean_loss_db(25.0) == pytest.approx(3.3)

    def test_mean_loss_rises_with_temperature(self):
        assert self.model.mean_loss_db(85.0) > self.model.mean_loss_db(0.0)

    def test_samples_within_published_envelope(self):
        samples = self.model.sample(25.0, 2000, self.rng)
        assert samples.min() >= 2.0
        assert samples.max() <= 4.5

    def test_sample_count(self):
        assert self.model.sample(25.0, 17, self.rng).shape == (17,)
        assert self.model.sample(25.0, 0, self.rng).shape == (0,)

    def test_sample_rejects_negative_count(self):
        with pytest.raises(ValueError):
            self.model.sample(25.0, -1, self.rng)

    def test_statistics_fields(self):
        stats = self.model.statistics(25.0, 500, self.rng)
        assert stats["min_db"] <= stats["average_db"] <= stats["max_db"]
        assert stats["average_db"] == pytest.approx(3.3, abs=0.15)

    def test_histogram_total_counts(self):
        counts, edges = self.model.histogram(50.0, 300, self.rng)
        assert counts.sum() == 300
        assert len(edges) == len(counts) + 1


class TestPowerModel:
    def test_power_below_published_ceiling(self):
        model = PowerModel()
        for temp in REPORTED_TEMPERATURES_C:
            for path in (1, 2, 3):
                assert model.power_watts(temp, path) <= 3.2

    def test_power_increases_with_temperature(self):
        model = PowerModel()
        assert model.power_watts(85.0, 1) >= model.power_watts(0.0, 1)

    def test_path3_draws_most_power(self):
        model = PowerModel()
        assert model.power_watts(25.0, 3) >= model.power_watts(25.0, 1)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().power_watts(25.0, 4)

    def test_sweep_shape(self):
        sweep = PowerModel().sweep()
        assert set(sweep) == {1, 2, 3}
        assert all(len(v) == len(REPORTED_TEMPERATURES_C) for v in sweep.values())


class TestBERModel:
    def test_zero_ber_at_low_temperatures(self):
        model = BERModel()
        for oma in (0.3, 0.5, 0.75, 1.0):
            assert model.ber(oma, -5.0) == 0.0
            assert model.ber(oma, 25.0) == 0.0

    def test_errors_only_at_low_oma_when_hot(self):
        model = BERModel()
        assert model.ber(1.0, 75.0) == 0.0
        assert model.ber(0.25, 75.0) > 0.0

    def test_ber_decreases_with_oma(self):
        model = BERModel()
        bers = [model.ber(oma, 75.0) for oma in (0.2, 0.4, 0.6, 0.8)]
        assert bers == sorted(bers, reverse=True)

    def test_ber_increases_with_temperature(self):
        model = BERModel()
        assert model.ber(0.3, 75.0) >= model.ber(0.3, 50.0)

    def test_zero_oma_means_no_link(self):
        assert BERModel().ber(0.0, 25.0) == 1.0

    def test_industrial_threshold_met_at_operating_points(self):
        model = BERModel()
        for temp in BER_TEMPERATURES_C:
            assert model.meets_industrial_threshold(0.6, temp)

    def test_threshold_constant_is_pre_fec(self):
        assert INDUSTRIAL_BER_THRESHOLD == pytest.approx(2.4e-4)


class TestOpticalMeasurementCampaign:
    def setup_method(self):
        self.campaign = OpticalMeasurementCampaign(seed=11, n_devices=100)

    def test_figure10a_rows(self):
        rows = self.campaign.figure10a_insertion_loss()
        assert [r["temperature_c"] for r in rows] == list(REPORTED_TEMPERATURES_C)
        for row in rows:
            assert 2.0 <= row["min_db"] <= row["average_db"] <= row["max_db"] <= 4.5

    def test_figure10b_power_series(self):
        series = self.campaign.figure10b_power()
        assert set(series) == {1, 2, 3}
        for values in series.values():
            assert max(values) <= 3.2

    def test_figure11_histograms(self):
        histograms = self.campaign.figure11_loss_histograms()
        assert set(histograms) == set(REPORTED_TEMPERATURES_C)
        for counts, edges in histograms.values():
            assert sum(counts) == 100

    def test_figure12_ber_sweeps(self):
        sweeps = self.campaign.figure12_ber()
        assert set(sweeps) == set(BER_TEMPERATURES_C)
        for temp, points in sweeps.items():
            for oma, ber in points:
                assert ber >= 0.0

    def test_reproducible_with_same_seed(self):
        a = OpticalMeasurementCampaign(seed=3).figure10a_insertion_loss()
        b = OpticalMeasurementCampaign(seed=3).figure10a_insertion_loss()
        assert a == b
