"""Tests for the physical wiring planner."""

import pytest

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.wiring import WiringPlanner
from repro.cost.architectures import infinitehbd_bom
from repro.dcn.fattree import FatTree, FatTreeConfig
from repro.hardware.ocstrx import PathState


def make_planner(n_nodes=64, k=2, r=4, nodes_per_tor=4, tors_per_domain=4):
    fat_tree = FatTree(
        FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=nodes_per_tor,
                      tors_per_domain=tors_per_domain)
    )
    return WiringPlanner(n_nodes=n_nodes, k=k, gpus_per_node=r, fat_tree=fat_tree)


class TestWiringPlan:
    def test_cable_count_matches_khop_link_count(self):
        n, k = 64, 2
        plan = make_planner(n_nodes=n, k=k).build()
        # A K-hop line has sum_{d=1..K} (n - d) links.
        expected = sum(n - d for d in range(1, k + 1))
        assert plan.total_cables == expected

    def test_every_cable_is_a_topology_link(self):
        n, k = 48, 3
        planner = make_planner(n_nodes=n, k=k)
        plan = planner.build()
        deployment = planner.plan
        for cable in plan.cables:
            pos_a = deployment.position_of(cable.node_a)
            pos_b = deployment.position_of(cable.node_b)
            assert abs(pos_a - pos_b) == cable.hop_distance
            assert cable.hop_distance <= k

    def test_ports_follow_convention(self):
        plan = make_planner().build()
        for cable in plan.cables:
            assert cable.port_a is PathState.EXTERNAL_1
            assert cable.port_b is PathState.EXTERNAL_2
            assert cable.bundle_a == cable.bundle_b == cable.hop_distance - 1

    def test_no_endpoint_reused(self):
        plan = make_planner(n_nodes=32, k=3).build()
        plan.validate()  # raises on duplicates

    def test_interior_nodes_have_2k_links(self):
        k = 2
        plan = make_planner(n_nodes=40, k=k).build()
        link_counts = {}
        for cable in plan.cables:
            for node in (cable.node_a, cable.node_b):
                link_counts[node] = link_counts.get(node, 0) + 1
        assert max(link_counts.values()) == 2 * k
        # Only the few nodes at the ends of the deployment line have fewer.
        assert sum(1 for v in link_counts.values() if v < 2 * k) <= 2 * k

    def test_hbd_links_cross_tors(self):
        """The deployment strategy places HBD neighbours in different ToRs."""
        plan = make_planner(n_nodes=64, k=2).build()
        assert plan.cross_tor_cable_fraction() > 0.95

    def test_per_node_bom_matches_table8(self):
        for k in (2, 3):
            planner = make_planner(n_nodes=64, k=k)
            plan = planner.build()
            check = planner.bom_check(plan)
            bom = infinitehbd_bom(k)
            ocstrx_in_bom = sum(
                line.quantity for line in bom.lines if line.component.name == "ocstrx_800g"
            )
            dac_in_bom = sum(
                line.quantity for line in bom.lines if line.component.name == "dac_1600g"
            )
            assert check["ocstrx_modules_per_node"] == ocstrx_in_bom
            assert check["dac_links_per_node"] == dac_in_bom

    def test_cables_by_hop_distance(self):
        plan = make_planner(n_nodes=20, k=2).build()
        by_distance = plan.cables_by_hop_distance()
        assert by_distance[1] == 19
        assert by_distance[2] == 18

    def test_cables_of_node(self):
        plan = make_planner(n_nodes=20, k=2).build()
        deployment_middle = plan.cables_of_node(10)
        assert 1 <= len(deployment_middle) <= 4

    def test_fiber_and_module_totals(self):
        plan = make_planner(n_nodes=16, k=2).build()
        assert plan.total_ocstrx_modules == 16 * 16
        assert plan.total_fiber_pairs == plan.total_cables * 8
        assert plan.total_dac_links == 16 * 4

    def test_validation_rejects_k_exceeding_gpus(self):
        with pytest.raises(ValueError):
            WiringPlanner(n_nodes=8, k=5, gpus_per_node=4)

    def test_mismatched_fat_tree_rejected(self):
        fat_tree = FatTree(FatTreeConfig(n_nodes=32))
        with pytest.raises(ValueError):
            WiringPlanner(n_nodes=64, k=2, fat_tree=fat_tree)
