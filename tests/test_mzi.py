"""Tests for the MZI switch element and matrix models."""

import math

import pytest

from repro.hardware.mzi import (
    DEFAULT_ELEMENT_SETTLE_US,
    MZISwitchElement,
    MZISwitchMatrix,
    MZIStateError,
)


class TestMZISwitchElement:
    def test_initial_state_is_bar(self):
        element = MZISwitchElement()
        assert element.state == "bar"
        assert element.phase_rad == 0.0

    def test_set_state_cross(self):
        element = MZISwitchElement()
        latency = element.set_state("cross")
        assert element.state == "cross"
        assert latency == pytest.approx(DEFAULT_ELEMENT_SETTLE_US)

    def test_set_state_same_state_is_free(self):
        element = MZISwitchElement()
        assert element.set_state("bar") == 0.0
        element.set_state("cross")
        assert element.set_state("cross") == 0.0

    def test_set_state_rejects_unknown(self):
        element = MZISwitchElement()
        with pytest.raises(MZIStateError):
            element.set_state("diagonal")

    def test_route_bar(self):
        element = MZISwitchElement()
        assert element.route(0) == 0
        assert element.route(1) == 1

    def test_route_cross(self):
        element = MZISwitchElement()
        element.set_state("cross")
        assert element.route(0) == 1
        assert element.route(1) == 0

    def test_route_rejects_bad_port(self):
        element = MZISwitchElement()
        with pytest.raises(MZIStateError):
            element.route(2)

    def test_transmission_bar_state(self):
        element = MZISwitchElement()
        assert element.transmission(0, 0) == pytest.approx(1.0)
        assert element.transmission(0, 1) == pytest.approx(0.0)

    def test_transmission_cross_state(self):
        element = MZISwitchElement()
        element.set_state("cross")
        assert element.transmission(0, 1) == pytest.approx(1.0)
        assert element.transmission(0, 0) == pytest.approx(0.0, abs=1e-12)

    def test_transmission_conserves_power(self):
        element = MZISwitchElement()
        for phase in (0.0, 0.3, math.pi / 2, 1.9, math.pi):
            element.set_phase(phase)
            total = element.transmission(0, 0) + element.transmission(0, 1)
            assert total == pytest.approx(1.0)

    def test_set_phase_latency_only_when_changed(self):
        element = MZISwitchElement()
        assert element.set_phase(0.0) == 0.0
        assert element.set_phase(1.0) > 0.0

    def test_transmission_rejects_bad_ports(self):
        element = MZISwitchElement()
        with pytest.raises(MZIStateError):
            element.transmission(0, 3)


class TestMZISwitchMatrix:
    def test_identity_by_default(self):
        matrix = MZISwitchMatrix(8)
        assert matrix.is_identity()
        assert all(matrix.route(i) == i for i in range(8))

    def test_stage_count_log2(self):
        assert MZISwitchMatrix(8).stage_count == 3
        assert MZISwitchMatrix(4).stage_count == 2
        assert MZISwitchMatrix(2).stage_count == 1
        assert MZISwitchMatrix(1).stage_count == 1

    def test_configure_partial_mapping(self):
        matrix = MZISwitchMatrix(4)
        latency = matrix.configure({0: 2, 2: 0})
        assert latency > 0
        assert matrix.route(0) == 2
        assert matrix.route(2) == 0
        assert matrix.route(1) == 1

    def test_configure_rejects_non_permutation(self):
        matrix = MZISwitchMatrix(4)
        with pytest.raises(MZIStateError):
            matrix.configure({0: 2, 1: 2})

    def test_configure_same_mapping_is_free(self):
        matrix = MZISwitchMatrix(4)
        matrix.configure({0: 1, 1: 0})
        assert matrix.configure({0: 1, 1: 0}) == 0.0

    def test_configure_rejects_out_of_range_lane(self):
        matrix = MZISwitchMatrix(4)
        with pytest.raises(MZIStateError):
            matrix.configure({4: 0})

    def test_swap(self):
        matrix = MZISwitchMatrix(8)
        matrix.swap(0, 4)
        assert matrix.route(0) == 4
        assert matrix.route(4) == 0

    def test_reset(self):
        matrix = MZISwitchMatrix(8)
        matrix.swap(0, 4)
        matrix.reset()
        assert matrix.is_identity()

    def test_insertion_loss_increases_with_extra_stages(self):
        matrix = MZISwitchMatrix(8)
        assert matrix.insertion_loss_db(2) > matrix.insertion_loss_db(0)

    def test_insertion_loss_in_published_envelope(self):
        """A loopback path (matrix + 2 front elements) should land in 2-4.5 dB."""
        matrix = MZISwitchMatrix(8)
        loss = matrix.insertion_loss_db(extra_stages=2)
        assert 2.0 <= loss <= 4.5

    def test_invalid_lane_count(self):
        with pytest.raises(ValueError):
            MZISwitchMatrix(0)

    def test_settle_latency_scales_with_stages(self):
        small = MZISwitchMatrix(2)
        large = MZISwitchMatrix(16)
        small_latency = small.configure({0: 1, 1: 0})
        large_latency = large.configure({0: 1, 1: 0})
        assert large_latency > small_latency
