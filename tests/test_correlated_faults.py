"""Property suite for the correlated-failure generator (repro.faults.correlated).

The contracts under test:

* every correlated event lands on exactly one failure domain's node set,
* the generator is a pure function of its config (same spec => array-equal
  event logs, across processes and call counts),
* ``correlation=0`` is an exact pass-through of the independent generator --
  event for event, statistic for statistic, digest for digest.
"""

import dataclasses
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api.spec import CorrelatedFaultSpec, TraceSpec
from repro.faults.correlated import (
    CorrelatedFaultConfig,
    DomainOutage,
    architecture_domains,
    correlated_trace_with_outages,
    fault_domains,
    generate_correlated_trace,
)
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import NVLHBD, TPUv4HBD


def _config(seed=0, correlation=1.0, n_nodes=64, days=30, **overlay):
    overlay.setdefault("domain_rate_per_day", 0.5)
    return CorrelatedFaultConfig(
        base=SyntheticTraceConfig(n_nodes=n_nodes, duration_days=days, seed=seed),
        correlation=correlation,
        **overlay,
    )


# --------------------------------------------------------------------------
# failure domains
# --------------------------------------------------------------------------
class TestFaultDomains:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=200, deadline=None)
    def test_domains_partition_the_cluster(self, n_nodes, domain_size):
        domains = fault_domains(n_nodes, domain_size)
        flat = [node for domain in domains for node in domain]
        assert sorted(flat) == list(range(n_nodes))       # cover, no overlap
        assert len(flat) == len(set(flat))
        # No domain is smaller than requested (the tail folds upward), and
        # none grows past one extra short tail.
        if len(domains) > 1:
            assert all(len(domain) >= domain_size for domain in domains)
            assert all(len(domain) < 2 * domain_size for domain in domains)

    def test_architecture_domains_are_placement_groups(self):
        domains = architecture_domains(NVLHBD(36, 4), n_nodes=18, tp_size=4)
        assert [len(d) for d in domains] == [9, 9]
        domains = architecture_domains(TPUv4HBD(4, 64), n_nodes=32, tp_size=4)
        flat = [node for domain in domains for node in domain]
        assert sorted(flat) == list(range(32))

    def test_architecture_domains_rejects_non_architectures(self):
        with pytest.raises(TypeError, match="HBDArchitecture"):
            architecture_domains(object(), n_nodes=8, tp_size=4)


# --------------------------------------------------------------------------
# overlay properties
# --------------------------------------------------------------------------
class TestOverlayProperties:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=25, deadline=None)
    def test_outages_land_on_a_single_domain(self, seed, correlation, domain_size):
        config = _config(seed=seed, correlation=correlation, domain_size=domain_size)
        trace, outages = correlated_trace_with_outages(config)
        domains = set(fault_domains(config.base.n_nodes, domain_size))
        base = generate_synthetic_trace(config.base)
        for outage in outages:
            assert outage.nodes in domains                 # one whole domain
        # The overlay added exactly one event per (outage, node) -- nothing
        # else changed relative to the independent base trace.  FaultTrace
        # keeps events sorted, so compare as multisets of exact records.
        def counted(events):
            return Counter((e.node_id, e.start_hour, e.end_hour) for e in events)

        overlay = Counter(
            (node, o.start_hour, o.end_hour) for o in outages for node in o.nodes
        )
        assert counted(trace.events) == counted(base.events) + overlay

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_config_gives_array_equal_event_logs(self, seed, correlation):
        config = _config(seed=seed, correlation=correlation)
        first = generate_correlated_trace(config)
        second = generate_correlated_trace(config)
        assert first.events == second.events
        assert np.array_equal(
            first.interval_timeline().event_log, second.interval_timeline().event_log
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_base_trace_is_identical_at_every_correlation_level(self, seed):
        base = generate_synthetic_trace(_config(seed=seed).base)
        base_counts = Counter(
            (e.node_id, e.start_hour, e.end_hour) for e in base.events
        )
        for correlation in (0.0, 0.3, 1.0):
            config = _config(seed=seed, correlation=correlation)
            trace, outages = correlated_trace_with_outages(config)
            overlay = Counter(
                (node, o.start_hour, o.end_hour) for o in outages for node in o.nodes
            )
            got = Counter((e.node_id, e.start_hour, e.end_hour) for e in trace.events)
            assert got == base_counts + overlay

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_correlation_zero_is_the_independent_generator(self, seed):
        config = _config(seed=seed, correlation=0.0)
        independent = generate_synthetic_trace(config.base)
        trace, outages = correlated_trace_with_outages(config)
        assert outages == ()
        assert trace.events == independent.events
        # Marginal per-node fault statistics are those of the independent
        # generator -- exactly, not approximately.
        assert trace.statistics() == independent.statistics()
        assert np.array_equal(
            trace.interval_timeline().event_log,
            independent.interval_timeline().event_log,
        )

    def test_higher_correlation_adds_downtime(self):
        quiet = generate_correlated_trace(_config(seed=5, correlation=0.0, days=120))
        noisy = generate_correlated_trace(
            _config(seed=5, correlation=1.0, days=120, domain_rate_per_day=1.0)
        )
        assert len(noisy.events) > len(quiet.events)
        assert (
            noisy.statistics().mean_fault_ratio > quiet.statistics().mean_fault_ratio
        )

    def test_custom_domains_are_respected(self):
        domains = ((0, 1), (2, 3, 4, 5), (6, 7))
        config = _config(seed=9, correlation=1.0, n_nodes=8, domain_rate_per_day=2.0)
        _, outages = correlated_trace_with_outages(config, domains=domains)
        assert outages  # rate is high enough that a 30-day window has some
        assert all(o.nodes in set(domains) for o in outages)

    def test_out_of_range_domain_nodes_are_rejected(self):
        config = _config(seed=9, correlation=1.0, n_nodes=8)
        with pytest.raises(ValueError, match="outside cluster"):
            correlated_trace_with_outages(config, domains=((0, 99),))

    def test_outages_never_extend_past_the_trace(self):
        config = _config(
            seed=2, correlation=1.0, days=10, domain_rate_per_day=3.0,
            repair_median_hours=48.0, repair_sigma=2.0,
        )
        trace, outages = correlated_trace_with_outages(config)
        horizon = config.base.duration_days * 24.0
        assert all(o.end_hour <= horizon for o in outages)
        assert all(e.end_hour <= horizon for e in trace.events)


# --------------------------------------------------------------------------
# config validation
# --------------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"correlation": -0.1},
            {"correlation": 1.5},
            {"domain_size": 0},
            {"domain_rate_per_day": 0.0},
            {"burst_multiplier": 0.5},
            {"mean_quiet_days": 0.0},
            {"mean_burst_days": -1.0},
            {"repair_median_hours": 0.0},
            {"repair_sigma": -0.5},
        ],
    )
    def test_config_rejects_bad_parameters(self, overrides):
        kwargs = {"base": SyntheticTraceConfig(n_nodes=8, duration_days=1, seed=0)}
        kwargs.update(overrides)
        with pytest.raises(ValueError):
            CorrelatedFaultConfig(**kwargs)

    def test_outage_validation(self):
        with pytest.raises(ValueError, match="at least one node"):
            DomainOutage(domain=0, nodes=(), start_hour=0.0, end_hour=1.0)
        with pytest.raises(ValueError, match="end_hour"):
            DomainOutage(domain=0, nodes=(0,), start_hour=2.0, end_hour=1.0)


# --------------------------------------------------------------------------
# spec plumbing
# --------------------------------------------------------------------------
class TestSpecPlumbing:
    def test_spec_build_matches_direct_generation(self):
        spec = TraceSpec(
            days=10, seed=4, gpus_per_node=8,
            correlated=CorrelatedFaultSpec(correlation=0.8, domain_rate_per_day=1.0),
        )
        config = CorrelatedFaultConfig(
            base=SyntheticTraceConfig(
                n_nodes=spec.source_nodes, duration_days=10, seed=4
            ),
            correlation=0.8,
            domain_rate_per_day=1.0,
        )
        assert spec.build().events == generate_correlated_trace(config).events

    def test_correlation_zero_spec_builds_the_independent_trace(self):
        plain = TraceSpec(days=8, seed=6)
        zero = dataclasses.replace(plain, correlated=CorrelatedFaultSpec())
        assert zero.build().events == plain.build().events

    def test_plain_spec_serialization_is_unchanged(self):
        spec = TraceSpec(days=8, seed=6)
        data = spec.to_dict()
        assert "correlated" not in data       # pre-correlation digests stable
        assert TraceSpec.from_dict(data) == spec

    def test_correlated_spec_round_trips(self):
        spec = TraceSpec(
            days=8, seed=6, correlated=CorrelatedFaultSpec(correlation=0.4)
        )
        data = spec.to_dict()
        assert data["correlated"]["correlation"] == 0.4
        assert TraceSpec.from_dict(data) == spec

    @pytest.mark.parametrize(
        "overrides",
        [
            {"correlation": 1.5},
            {"correlation": -0.1},
            {"domain_size": 0},
            {"domain_rate_per_day": 0.0},
            {"burst_multiplier": 0.0},
            {"repair_median_hours": -1.0},
        ],
    )
    def test_correlated_spec_rejects_bad_parameters(self, overrides):
        with pytest.raises(ValueError):
            CorrelatedFaultSpec(**overrides)
