"""Tests for the fault-trace data structures."""

import pytest

from repro.faults.trace import FaultEvent, FaultTrace, HOURS_PER_DAY


def simple_trace():
    events = [
        FaultEvent(node_id=0, start_hour=0.0, end_hour=48.0),
        FaultEvent(node_id=1, start_hour=24.0, end_hour=72.0),
        FaultEvent(node_id=2, start_hour=100.0, end_hour=124.0),
    ]
    return FaultTrace(n_nodes=10, duration_days=10, events=events, gpus_per_node=8)


class TestFaultEvent:
    def test_duration(self):
        event = FaultEvent(node_id=0, start_hour=10.0, end_hour=34.0)
        assert event.duration_hours == 24.0

    def test_active_at_is_half_open(self):
        event = FaultEvent(node_id=0, start_hour=10.0, end_hour=20.0)
        assert event.active_at(10.0)
        assert event.active_at(19.999)
        assert not event.active_at(20.0)
        assert not event.active_at(5.0)

    def test_rejects_negative_node(self):
        with pytest.raises(ValueError):
            FaultEvent(node_id=-1, start_hour=0.0, end_hour=1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            FaultEvent(node_id=0, start_hour=5.0, end_hour=1.0)


class TestFaultTrace:
    def test_faulty_nodes_at(self):
        trace = simple_trace()
        assert trace.faulty_nodes_at(0.0) == {0}
        assert trace.faulty_nodes_at(30.0) == {0, 1}
        assert trace.faulty_nodes_at(80.0) == set()
        assert trace.faulty_nodes_at(110.0) == {2}

    def test_fault_ratio_at(self):
        trace = simple_trace()
        assert trace.fault_ratio_at(30.0) == pytest.approx(0.2)

    def test_sample_times_cover_duration(self):
        trace = simple_trace()
        times = trace.sample_times(24.0)
        assert len(times) == 10
        assert times[0] == 0.0

    def test_fault_ratio_series(self):
        trace = simple_trace()
        days, ratios = trace.fault_ratio_series(24.0)
        assert len(days) == len(ratios) == 10
        assert ratios[0] == pytest.approx(0.1)
        assert ratios[1] == pytest.approx(0.2)

    def test_fault_ratio_cdf_monotone(self):
        trace = simple_trace()
        ratios, cdf = trace.fault_ratio_cdf()
        assert ratios == sorted(ratios)
        assert cdf[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))

    def test_statistics(self):
        stats = simple_trace().statistics()
        assert stats.n_events == 3
        assert stats.mean_repair_hours == pytest.approx((48 + 48 + 24) / 3)
        assert 0.0 <= stats.mean_fault_ratio <= stats.p99_fault_ratio <= 1.0

    def test_restrict_nodes_drops_out_of_range_events(self):
        trace = simple_trace()
        small = trace.restrict_nodes(2)
        assert small.n_nodes == 2
        assert len(small) == 2
        with pytest.raises(ValueError):
            trace.restrict_nodes(11)

    def test_event_outside_cluster_rejected(self):
        with pytest.raises(ValueError):
            FaultTrace(
                n_nodes=2,
                duration_days=1,
                events=[FaultEvent(node_id=5, start_hour=0, end_hour=1)],
            )

    def test_csv_round_trip(self):
        trace = simple_trace()
        text = trace.to_csv()
        restored = FaultTrace.from_csv(text, n_nodes=10, duration_days=10)
        assert len(restored) == len(trace)
        assert restored.faulty_nodes_at(30.0) == trace.faulty_nodes_at(30.0)

    def test_events_sorted_by_start(self):
        events = [
            FaultEvent(node_id=1, start_hour=50.0, end_hour=60.0),
            FaultEvent(node_id=0, start_hour=0.0, end_hour=10.0),
        ]
        trace = FaultTrace(n_nodes=2, duration_days=5, events=events)
        assert trace.events[0].node_id == 0

    def test_total_gpus(self):
        assert simple_trace().total_gpus == 80

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FaultTrace(n_nodes=0, duration_days=1, events=[])
        with pytest.raises(ValueError):
            FaultTrace(n_nodes=1, duration_days=0, events=[])

    def test_invalid_sampling_interval(self):
        with pytest.raises(ValueError):
            simple_trace().sample_times(0.0)
