"""Golden-file regression snapshots for the blast-radius study.

A small canonical packed-vs-spread blast-radius :class:`ResultSet` (two
architectures, three correlation levels) is kept as checked-in JSON and must
stay **byte-stable**: any change to the generators, the scheduler, the
runner's aggregation or the serialization shows up as a diff here.

Refresh intentionally with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
"""

import json
from pathlib import Path

import pytest

from repro.api import ExperimentRunner, ExperimentSpec, Scenario
from repro.api.spec import (
    ArchitectureSpec,
    CorrelatedFaultSpec,
    TraceSpec,
    WorkloadSpec,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _golden_spec():
    """The canonical blast-radius study: fixed forever unless goldens refresh."""
    return ExperimentSpec.of(
        scenario=Scenario(
            name="golden-blast-radius",
            trace=TraceSpec(
                days=30,
                seed=348,
                correlated=CorrelatedFaultSpec(domain_rate_per_day=1.0),
            ),
            architectures=(
                ArchitectureSpec(name="NVL-72"),
                ArchitectureSpec(name="InfiniteHBD(K=2)"),
            ),
            tp_sizes=(8,),
            n_nodes=64,
            workload=WorkloadSpec(n_jobs=8, seed=1, median_work_hours=200.0),
        ),
        experiments=("blast_radius",),
        options={"blast_radius": {"correlations": [0.0, 0.5, 1.0]}},
        max_workers=1,
    )


def _check_or_update(name, rendered, update):
    path = GOLDEN_DIR / name
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        return
    assert path.is_file(), (
        f"golden {path} is missing; generate it with "
        "pytest tests/test_goldens.py --update-goldens"
    )
    assert rendered == path.read_text(), (
        f"golden {name} drifted; if the change is intentional refresh with "
        "pytest tests/test_goldens.py --update-goldens"
    )


class TestBlastRadiusGolden:
    def test_blast_radius_resultset_is_byte_stable(self, update_goldens):
        results = ExperimentRunner(_golden_spec()).run()
        _check_or_update(
            "blast_radius_resultset.json", results.to_json() + "\n", update_goldens
        )

    def test_golden_covers_both_placements_and_architectures(self):
        data = json.loads((GOLDEN_DIR / "blast_radius_resultset.json").read_text())
        rows = data["results"]
        # 2 architectures x 2 placements x 3 correlation levels.
        assert len(rows) == 12
        assert {r["architecture"] for r in rows} == {"NVL-72", "InfiniteHBD(K=2)"}
        placements = {r["metrics"]["placement"] for r in rows}
        assert placements == {"packed", "spread"}
        correlations = {r["metrics"]["correlation"] for r in rows}
        assert correlations == {0.0, 0.5, 1.0}
        # The study is non-degenerate: correlated cells record fault hits.
        assert any(r["metrics"]["fault_events"] > 0 for r in rows)

    def test_golden_matches_a_fresh_run_not_just_bytes(self):
        # Belt and braces: the deserialized metrics agree with a fresh run
        # even if whitespace/serialization conventions ever change.
        fresh = ExperimentRunner(_golden_spec()).run()
        stored = json.loads((GOLDEN_DIR / "blast_radius_resultset.json").read_text())
        fresh_rows = [r.to_dict() for r in fresh]
        assert fresh_rows == stored["results"]


class TestGoldenHygiene:
    def test_goldens_are_valid_pretty_json(self):
        for path in sorted(GOLDEN_DIR.glob("*.json")):
            text = path.read_text()
            parsed = json.loads(text)
            assert text == json.dumps(parsed, indent=2) + "\n", path.name

    def test_update_flag_is_registered(self, request):
        assert request.config.getoption("--update-goldens") in (True, False)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__]))
