"""Tests for the K-Hop Ring / Line topology."""

import networkx as nx
import pytest

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig, Segment


def make(n=32, k=2, r=4, ring=True):
    return KHopRingTopology(KHopTopologyConfig(n_nodes=n, k=k, gpus_per_node=r, ring=ring))


class TestConfig:
    def test_total_gpus(self):
        assert KHopTopologyConfig(n_nodes=10, gpus_per_node=4).total_gpus == 40

    def test_degree_is_2k(self):
        assert KHopTopologyConfig(n_nodes=100, k=3).degree == 6

    def test_degree_capped_by_size(self):
        assert KHopTopologyConfig(n_nodes=3, k=5).degree == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KHopTopologyConfig(n_nodes=0)
        with pytest.raises(ValueError):
            KHopTopologyConfig(n_nodes=4, k=0)
        with pytest.raises(ValueError):
            KHopTopologyConfig(n_nodes=4, gpus_per_node=0)


class TestNeighbors:
    def test_ring_neighbors_k2(self):
        topo = make(n=10, k=2)
        assert topo.neighbors(0) == [1, 2, 8, 9]
        assert topo.neighbors(5) == [3, 4, 6, 7]

    def test_line_neighbors_at_edge(self):
        topo = make(n=10, k=2, ring=False)
        assert topo.neighbors(0) == [1, 2]
        assert topo.neighbors(9) == [7, 8]

    def test_has_link_within_k(self):
        topo = make(n=20, k=3)
        assert topo.has_link(0, 3)
        assert not topo.has_link(0, 4)
        assert topo.has_link(0, 17)  # wrap-around at distance 3

    def test_no_self_link(self):
        assert not make().has_link(5, 5)

    def test_hop_distance_ring_wraps(self):
        topo = make(n=10, k=2)
        assert topo.hop_distance(0, 9) == 1
        assert topo.hop_distance(0, 5) == 5

    def test_hop_distance_line(self):
        topo = make(n=10, k=2, ring=False)
        assert topo.hop_distance(0, 9) == 9

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            make(n=10).neighbors(10)


class TestGraph:
    def test_graph_degree_matches_2k(self):
        topo = make(n=20, k=2)
        g = topo.graph()
        assert all(deg == 4 for _, deg in g.degree())

    def test_graph_removes_faulty_nodes(self):
        topo = make(n=20, k=2)
        g = topo.graph(faulty={3, 4})
        assert 3 not in g and 4 not in g
        assert g.number_of_nodes() == 18

    def test_graph_connected_without_faults(self):
        g = make(n=30, k=2).graph()
        assert nx.is_connected(g)

    def test_graph_stays_connected_bypassing_single_fault(self):
        topo = make(n=30, k=2)
        g = topo.graph(faulty={7})
        assert nx.is_connected(g)

    def test_graph_disconnects_on_k_consecutive_faults_line(self):
        topo = make(n=30, k=2, ring=False)
        g = topo.graph(faulty={10, 11})
        assert not nx.is_connected(g)


class TestHealthySegments:
    def test_no_faults_single_ring_segment(self):
        topo = make(n=16, k=2)
        segments = topo.healthy_segments(set())
        assert len(segments) == 1
        assert segments[0].is_ring
        assert len(segments[0]) == 16

    def test_single_fault_is_bypassed(self):
        topo = make(n=16, k=2)
        segments = topo.healthy_segments({5})
        assert len(segments) == 1
        assert len(segments[0]) == 15

    def test_k_minus_one_consecutive_faults_bypassed(self):
        topo = make(n=32, k=3)
        segments = topo.healthy_segments({10, 11})
        assert len(segments) == 1
        assert len(segments[0]) == 30

    def test_k_consecutive_faults_break_segment(self):
        topo = make(n=32, k=2, ring=False)
        segments = topo.healthy_segments({10, 11})
        assert len(segments) == 2
        sizes = sorted(len(s) for s in segments)
        assert sizes == [10, 20]

    def test_ring_merges_across_wrap(self):
        topo = make(n=32, k=2)
        # Break the ring in the middle only; the wrap point stays intact so
        # the two halves merge into a single line segment across index 0.
        segments = topo.healthy_segments({10, 11})
        assert len(segments) == 1
        assert len(segments[0]) == 30

    def test_ring_two_breakpoints_two_segments(self):
        topo = make(n=32, k=2)
        segments = topo.healthy_segments({10, 11, 20, 21})
        assert len(segments) == 2

    def test_all_nodes_faulty(self):
        topo = make(n=8, k=2)
        assert topo.healthy_segments(set(range(8))) == []

    def test_segments_preserve_order(self):
        topo = make(n=12, k=2, ring=False)
        segments = topo.healthy_segments({4})
        nodes = [n for s in segments for n in s.nodes]
        assert nodes == sorted(nodes)

    def test_segment_capacity_and_leftover(self):
        segment = Segment(nodes=tuple(range(10)))
        assert segment.tp_group_capacity(4) == 2
        assert segment.leftover_nodes(4) == 2


class TestBreakpoints:
    def test_no_breakpoints_without_faults(self):
        assert make(n=20, k=2).breakpoints(set()) == 0

    def test_single_fault_no_breakpoint(self):
        assert make(n=20, k=2).breakpoints({5}) == 0

    def test_two_consecutive_faults_is_breakpoint_for_k2(self):
        assert make(n=20, k=2).breakpoints({5, 6}) == 1

    def test_two_consecutive_faults_not_breakpoint_for_k3(self):
        assert make(n=20, k=3).breakpoints({5, 6}) == 0

    def test_line_end_run_is_not_breakpoint(self):
        topo = make(n=20, k=2, ring=False)
        assert topo.breakpoints({0, 1, 2}) == 0

    def test_ring_wrap_run_is_breakpoint(self):
        topo = make(n=20, k=2)
        assert topo.breakpoints({19, 0}) == 1


class TestCapacity:
    def test_usable_gpus_no_faults(self):
        topo = make(n=16, k=2, r=4)
        assert topo.usable_gpus(set(), tp_size=32) == 64

    def test_usable_gpus_with_fragmentation(self):
        topo = make(n=10, k=2, r=4)
        # 10 nodes = 40 GPUs, TP-32 needs 8 nodes -> one group, 2 nodes wasted
        assert topo.usable_gpus(set(), tp_size=32) == 32
        assert topo.wasted_gpus(set(), tp_size=32) == 8

    def test_waste_ratio_definition(self):
        topo = make(n=10, k=2, r=4)
        assert topo.waste_ratio(set(), tp_size=32) == pytest.approx(8 / 40)

    def test_single_fault_waste_small(self):
        topo = make(n=720, k=3, r=4)
        waste = topo.waste_ratio({100}, tp_size=32)
        # one missing node leaves 719 healthy; 719 // 8 * 8 = 712 usable
        assert waste == pytest.approx((719 - 712) * 4 / 2880)

    def test_nodes_per_tp_group(self):
        topo = make(r=4)
        assert topo.nodes_per_tp_group(32) == 8
        assert topo.nodes_per_tp_group(8) == 2
        assert topo.nodes_per_tp_group(2) == 1

    def test_wasted_plus_usable_equals_healthy(self):
        topo = make(n=100, k=2, r=4)
        faulty = {3, 4, 50, 80}
        usable = topo.usable_gpus(faulty, 16)
        wasted = topo.wasted_gpus(faulty, 16)
        assert usable + wasted == (100 - 4) * 4

    def test_k3_never_wastes_more_than_k2(self):
        faulty = {5, 6, 30, 31, 60}
        k2 = make(n=128, k=2, r=4)
        k3 = make(n=128, k=3, r=4)
        assert k3.wasted_gpus(faulty, 32) <= k2.wasted_gpus(faulty, 32)
