"""Tests for node-level placement, backfill and fairness metrics.

The placed scheduler's contracts:

* **domain consistency** -- every architecture's ``placement_groups`` carve
  exactly the capacity ``usable_gpus`` reports (when the TP size is a
  multiple of the node size, the regime every evaluated config lives in);
* **determinism** -- same seed + spec => byte-identical ``ClusterReport``
  JSON across independent runs;
* **deterministic fault hits** -- a fault interval deschedules exactly the
  jobs whose held nodes went down, with integer hit counts;
* **conservation** -- placed or not, productive + waiting + restart hours
  partition every job's wall-clock time (hypothesis-tested);
* **backfill** -- small jobs jump a blocked FIFO head only when they cannot
  delay its projected start.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.trace import FaultEvent, FaultTrace
from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
)
from repro.scheduler import (
    ClusterScheduler,
    JobSpec,
    PLACEMENT_NAMES,
    PackedPlacement,
    SpreadPlacement,
    WorkloadConfig,
    generate_workload,
    placement_by_name,
    policy_by_name,
)

N_NODES = 24
ARCHITECTURES = [
    BigSwitchHBD(4),
    NVLHBD(36, 4),
    NVLHBD(8, 4),
    SiPRingHBD(4),
    TPUv4HBD(4, cube_size=16),
    InfiniteHBDArchitecture(k=2, gpus_per_node=4),
]


def quiet_timeline(n_nodes=N_NODES, days=4, gpus_per_node=4):
    return FaultTrace(
        n_nodes=n_nodes, duration_days=days, events=[], gpus_per_node=gpus_per_node
    ).interval_timeline()


def faulty_timeline(events, n_nodes=N_NODES, days=4, gpus_per_node=4):
    return FaultTrace(
        n_nodes=n_nodes,
        duration_days=days,
        events=[FaultEvent(*e) for e in events],
        gpus_per_node=gpus_per_node,
    ).interval_timeline()


# --------------------------------------------------------------------------
# placement domains
# --------------------------------------------------------------------------
class TestPlacementGroups:
    @pytest.mark.parametrize("arch", ARCHITECTURES, ids=lambda a: a.name)
    @pytest.mark.parametrize("tp_size", [4, 8, 16, 32])
    def test_domains_partition_usable_capacity(self, arch, tp_size):
        import random

        rng = random.Random(hash((arch.name, tp_size)) & 0xFFFF)
        for _ in range(30):
            faults = set(rng.sample(range(N_NODES), rng.randint(0, N_NODES)))
            groups = arch.placement_groups(N_NODES, faults, tp_size)
            assert sum(g.capacity_gpus for g in groups) == arch.usable_gpus(
                N_NODES, faults, tp_size
            )
            seen = set()
            for group in groups:
                assert not (set(group.nodes) & faults), "faulty node in a domain"
                assert not (set(group.nodes) & seen), "domains overlap"
                seen |= set(group.nodes)

    def test_big_switch_is_one_flat_domain(self):
        groups = BigSwitchHBD(4).placement_groups(8, {3}, 8)
        assert len(groups) == 1
        assert groups[0].nodes == (0, 1, 2, 4, 5, 6, 7)
        assert groups[0].nodes_per_group == 2

    def test_nvl_domains_are_units(self):
        groups = NVLHBD(8, 4).placement_groups(8, {2}, 8)  # 2-node units
        assert [g.nodes for g in groups] == [(0, 1), (3,), (4, 5), (6, 7)]
        # the unit with a fault keeps its healthy node but has no free slot
        assert [g.capacity_groups for g in groups] == [1, 0, 1, 1]

    def test_sipring_faulty_ring_is_excluded(self):
        groups = SiPRingHBD(4).placement_groups(8, {2}, 8)  # 2-node rings
        assert [g.nodes for g in groups] == [(0, 1), (4, 5), (6, 7)]

    def test_tpuv4_multi_cube_domains_are_dedicated(self):
        arch = TPUv4HBD(4, cube_size=16)  # 4-node cubes
        groups = arch.placement_groups(16, set(), 32)  # 2 cubes per TP group
        assert len(groups) == 2
        assert all(g.nodes_per_group == len(g.nodes) == 8 for g in groups)
        # one fault poisons its cube, leaving 3 healthy cubes -> one pair
        groups = arch.placement_groups(16, {0}, 32)
        assert len(groups) == 1
        assert groups[0].nodes == tuple(range(4, 12))

    def test_infinitehbd_domains_are_segments(self):
        arch = InfiniteHBDArchitecture(k=2, gpus_per_node=4)
        # one fault is bridged: still a single (ring) segment
        groups = arch.placement_groups(12, {0}, 8)
        assert len(groups) == 1
        assert len(groups[0].nodes) == 11
        # a K-long run breaks the ring into one open segment
        groups = arch.placement_groups(12, {0, 1}, 8)
        assert len(groups) == 1
        assert groups[0].nodes == tuple(range(2, 12))


# --------------------------------------------------------------------------
# determinism
# --------------------------------------------------------------------------
class TestPlacedDeterminism:
    def _run(self, seed, placement, backfill=False, policy=None):
        from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace

        trace = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=120, duration_days=20, seed=seed)
        )
        jobs = generate_workload(
            WorkloadConfig(n_jobs=30, seed=seed, tp_size=32, max_gpus=384)
        )
        return ClusterScheduler(
            NVLHBD(72, gpus_per_node=8),
            trace.interval_timeline(),
            jobs,
            policy=policy,
            placement=placement,
            backfill=backfill,
        ).run()

    @pytest.mark.parametrize("placement", PLACEMENT_NAMES)
    def test_same_seed_byte_identical_report_json(self, placement):
        first = json.dumps(self._run(11, placement).to_dict(), sort_keys=True)
        second = json.dumps(self._run(11, placement).to_dict(), sort_keys=True)
        assert first == second

    def test_distinct_seeds_differ(self):
        first = json.dumps(self._run(11, "packed").to_dict(), sort_keys=True)
        second = json.dumps(self._run(12, "packed").to_dict(), sort_keys=True)
        assert first != second

    def test_placed_report_records_mode(self):
        report = self._run(11, "packed", backfill=True)
        assert report.placement == "packed"
        assert report.backfill is True
        data = report.to_dict()
        assert data["placement"] == "packed"
        assert data["backfill"] is True
        expected = self._run(11, None)
        assert expected.placement is None and expected.backfill is False


# --------------------------------------------------------------------------
# deterministic fault hits
# --------------------------------------------------------------------------
class TestDeterministicFaultHits:
    def test_fault_hits_exactly_the_holder(self):
        # Two 8-GPU jobs on a 2-unit NVL cluster; packed placement puts the
        # first job on unit 0 (nodes 0-1) and the second on unit 1 (2-3).
        timeline = faulty_timeline([(0, 10.0, 20.0)], n_nodes=4, days=2)
        jobs = [
            JobSpec(name="a", gpus=8, tp_size=4, work_hours=24.0),
            JobSpec(name="b", gpus=8, tp_size=4, work_hours=24.0),
        ]
        report = ClusterScheduler(
            NVLHBD(8, 4), timeline, jobs, placement="packed"
        ).run()
        hit, untouched = report.jobs
        assert hit.impacting_faults == 1.0      # a real hit count
        assert hit.restart_charged_hours == 0.75
        assert untouched.impacting_faults == 0.0
        assert untouched.restart_hours == 0.0
        # the hit job waits out the outage (its unit lost a node), restarts,
        # and still finishes; conservation holds throughout
        assert hit.finished and untouched.finished
        assert hit.waiting_hours >= 10.0

    def test_surviving_job_keeps_running_unlike_expected_mode(self):
        # In expected-value mode every allocated job is charged a share of
        # the fault; in placed mode the job whose nodes survived is free.
        timeline = faulty_timeline([(0, 10.0, 20.0)], n_nodes=4, days=2)
        jobs = [
            JobSpec(name="a", gpus=8, tp_size=4, work_hours=24.0),
            JobSpec(name="b", gpus=8, tp_size=4, work_hours=24.0),
        ]
        expected = ClusterScheduler(NVLHBD(8, 4), timeline, jobs).run()
        placed = ClusterScheduler(
            NVLHBD(8, 4), timeline, jobs, placement="packed"
        ).run()
        # expected mode: the surviving job "b" is squeezed out by the
        # capacity drop (12 usable < 16 demanded) and charged a preemption
        assert expected.jobs[0].impacting_faults > 0
        assert expected.jobs[1].preemptions == 1
        # placed mode: "b" holds unit-1 nodes and is completely untouched
        assert [job.impacting_faults for job in placed.jobs] == [1.0, 0.0]
        assert placed.jobs[1].preemptions == 0
        assert placed.jobs[1].restart_hours == 0.0

    def test_spread_placement_changes_the_blast_radius(self):
        # Two single-node jobs on two NVL-16 units (nodes 0-3 / 4-7):
        # packed co-locates them in unit 0 (nodes 0 and 1); spread puts the
        # second job in the emptier unit 1 (node 4).  A fault on node 1
        # therefore hits the second job only under packed placement.
        timeline = faulty_timeline([(1, 10.0, 20.0)], n_nodes=8, days=2)
        jobs = [
            JobSpec(name="first", gpus=4, tp_size=4, work_hours=24.0),
            JobSpec(name="second", gpus=4, tp_size=4, work_hours=24.0),
        ]
        packed = ClusterScheduler(
            NVLHBD(16, 4), timeline, jobs, placement="packed"
        ).run()
        spread = ClusterScheduler(
            NVLHBD(16, 4), timeline, jobs, placement="spread"
        ).run()
        assert [job.impacting_faults for job in packed.jobs] == [0.0, 1.0]
        assert [job.impacting_faults for job in spread.jobs] == [0.0, 0.0]

    def test_placed_infeasible_job_requires_horizon(self):
        # With tp < R the node-granular placed capacity (one TP group per
        # node here: 4 nodes x 2 GPUs = 8) is a conservative lower bound on
        # the expected-value capacity (16), so this job validates in
        # expected mode but not in placed mode.
        timeline = quiet_timeline(n_nodes=4)
        job = JobSpec(name="wide", gpus=12, tp_size=2, work_hours=1.0)
        ClusterScheduler(BigSwitchHBD(4), timeline, [job]).run()
        with pytest.raises(ValueError, match="cannot run even"):
            ClusterScheduler(
                BigSwitchHBD(4), timeline, [job], placement="packed"
            ).run()

    def test_placement_accepts_policy_instances(self):
        timeline = quiet_timeline(n_nodes=4)
        job = JobSpec(name="j", gpus=8, tp_size=4, work_hours=1.0)
        for policy in (PackedPlacement(), SpreadPlacement()):
            report = ClusterScheduler(
                BigSwitchHBD(4), timeline, [job], placement=policy
            ).run()
            assert report.placement == policy.name

    def test_unknown_placement_name_suggests(self):
        with pytest.raises(KeyError, match="did you mean"):
            placement_by_name("paced")


# --------------------------------------------------------------------------
# backfill
# --------------------------------------------------------------------------
class TestBackfill:
    def _blocked_head_setup(self, backfill, placement=None):
        # 32-GPU cluster.  "running" holds 28 of it for 10h; the
        # cluster-sized "head" blocks the queue until t=10, leaving 4 GPUs
        # idle that only a backfilled job may use: "small" finishes well
        # before the head's projected start, so admitting it cannot delay
        # the head.
        timeline = quiet_timeline(n_nodes=8, days=4)
        jobs = [
            JobSpec(name="running", gpus=28, tp_size=4, work_hours=10.0),
            JobSpec(name="head", gpus=32, tp_size=4, work_hours=5.0,
                    submit_hour=1.0),
            JobSpec(name="small", gpus=4, tp_size=4, work_hours=2.0,
                    submit_hour=2.0),
        ]
        return ClusterScheduler(
            BigSwitchHBD(4), timeline, jobs, backfill=backfill,
            placement=placement,
        ).run()

    @pytest.mark.parametrize("placement", [None, "packed"])
    def test_small_job_jumps_blocked_head_without_delaying_it(self, placement):
        strict = self._blocked_head_setup(backfill=False, placement=placement)
        eased = self._blocked_head_setup(backfill=True, placement=placement)
        running_s, head_s, small_s = strict.jobs
        running_e, head_e, small_e = eased.jobs
        # strict FIFO: small waits behind the head
        assert small_s.first_start_hour == 15.0
        # backfill: small runs immediately in the idle capacity...
        assert small_e.first_start_hour == 2.0
        # ...and the head starts exactly when it would have anyway
        assert head_e.first_start_hour == head_s.first_start_hour == 10.0
        assert head_e.jct_hours == head_s.jct_hours

    def test_wide_backfill_candidate_is_rejected(self):
        # A job too long to finish before the head's projected start and
        # too wide for the head's leftover must keep waiting.
        timeline = quiet_timeline(n_nodes=8, days=4)
        jobs = [
            JobSpec(name="running", gpus=32, tp_size=4, work_hours=10.0),
            JobSpec(name="head", gpus=28, tp_size=4, work_hours=5.0,
                    submit_hour=1.0),
            JobSpec(name="wide", gpus=8, tp_size=4, work_hours=50.0,
                    submit_hour=2.0),
            JobSpec(name="slim", gpus=4, tp_size=4, work_hours=50.0,
                    submit_hour=3.0),
        ]
        report = ClusterScheduler(
            BigSwitchHBD(4), timeline, jobs, backfill=True
        ).run()
        by_name = {job.name: job for job in report.jobs}
        # t=10: "head" starts (28 of 32); "wide" blocks (8 > 4 free) and
        # reserves the head's completion at t=15.  "slim" (50h) cannot
        # finish by then but fits the 4-GPU leftover, so it extra-backfills
        # past "wide"; "wide" itself must wait for its reservation.
        assert by_name["head"].first_start_hour == 10.0
        assert by_name["slim"].first_start_hour == 10.0
        assert by_name["wide"].first_start_hour == 15.0

    def test_backfill_is_noop_for_non_strict_policies(self):
        timeline = quiet_timeline(n_nodes=8, days=4)
        jobs = [
            JobSpec(name="a", gpus=32, tp_size=4, work_hours=10.0),
            JobSpec(name="b", gpus=32, tp_size=4, work_hours=5.0, submit_hour=1.0),
            JobSpec(name="c", gpus=4, tp_size=4, work_hours=2.0, submit_hour=2.0),
        ]
        policy = policy_by_name("smallest-first")
        plain = ClusterScheduler(
            BigSwitchHBD(4), timeline, jobs, policy=policy
        ).run()
        eased = ClusterScheduler(
            BigSwitchHBD(4), timeline, jobs, policy=policy, backfill=True
        ).run()
        # identical outcomes: non-strict policies already skip blocked jobs
        assert [job.to_dict() for job in plain.jobs] == [
            job.to_dict() for job in eased.jobs
        ]


# --------------------------------------------------------------------------
# fairness metrics
# --------------------------------------------------------------------------
class TestFairnessMetrics:
    def test_rho_is_one_on_an_idle_cluster(self):
        timeline = quiet_timeline()
        job = JobSpec(name="solo", gpus=16, tp_size=4, work_hours=3.0)
        report = ClusterScheduler(BigSwitchHBD(4), timeline, [job]).run()
        assert report.jobs[0].finish_time_fairness == 1.0
        assert report.mean_finish_time_fairness == 1.0
        assert report.max_finish_time_fairness == 1.0
        assert report.jain_fairness_index == 1.0

    def test_queued_job_has_rho_above_one(self):
        timeline = quiet_timeline(n_nodes=8)
        jobs = [
            JobSpec(name="first", gpus=32, tp_size=4, work_hours=4.0),
            JobSpec(name="second", gpus=32, tp_size=4, work_hours=4.0),
        ]
        report = ClusterScheduler(BigSwitchHBD(4), timeline, jobs).run()
        rhos = report.finish_time_fairness()
        assert rhos == [1.0, 2.0]  # second waited 4h for 4h of work
        assert report.mean_finish_time_fairness == 1.5
        assert report.max_finish_time_fairness == 2.0
        assert report.jain_fairness_index == pytest.approx(9.0 / 10.0)

    def test_unfinished_jobs_have_no_rho(self):
        timeline = quiet_timeline(n_nodes=8)
        jobs = [
            JobSpec(name="done", gpus=32, tp_size=4, work_hours=1.0),
            JobSpec(name="cut", gpus=32, tp_size=4, work_hours=50.0),
        ]
        report = ClusterScheduler(
            BigSwitchHBD(4), timeline, jobs, horizon_hours=2.0
        ).run()
        assert report.jobs[0].finish_time_fairness == 1.0
        assert report.jobs[1].finish_time_fairness is None
        assert report.finish_time_fairness() == [1.0]

    def test_empty_report_fairness_is_zero(self):
        timeline = quiet_timeline(n_nodes=8)
        job = JobSpec(name="late", gpus=8, tp_size=4, work_hours=1.0,
                      submit_hour=100.0)
        report = ClusterScheduler(
            BigSwitchHBD(4), timeline, [job], horizon_hours=1.0
        ).run()
        assert report.jain_fairness_index == 0.0
        assert report.mean_finish_time_fairness == 0.0

    def test_fairness_in_report_dict(self):
        timeline = quiet_timeline()
        job = JobSpec(name="solo", gpus=16, tp_size=4, work_hours=3.0)
        data = ClusterScheduler(BigSwitchHBD(4), timeline, [job]).run().to_dict()
        assert data["mean_finish_time_fairness"] == 1.0
        assert data["jain_fairness_index"] == 1.0
        assert data["jobs"][0]["finish_time_fairness"] == 1.0


# --------------------------------------------------------------------------
# conservation: the wall-clock partition holds in placed mode too
# --------------------------------------------------------------------------
placed_event = st.tuples(
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.floats(min_value=0.0, max_value=90.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.5, max_value=40.0, allow_nan=False, allow_infinity=False),
)

placed_job = st.tuples(
    st.integers(min_value=1, max_value=6),    # TP groups
    st.floats(min_value=0.5, max_value=30.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False),
)


class TestPlacedConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        raw_events=st.lists(placed_event, max_size=12),
        raw_jobs=st.lists(placed_job, min_size=1, max_size=8),
        arch_index=st.integers(0, len(ARCHITECTURES) - 1),
        placement_index=st.integers(0, len(PLACEMENT_NAMES) - 1),
        policy_index=st.integers(0, 2),
        preemptive=st.booleans(),
        backfill=st.booleans(),
    )
    def test_placed_buckets_partition_wall_clock(
        self, raw_events, raw_jobs, arch_index, placement_index, policy_index,
        preemptive, backfill,
    ):
        arch = ARCHITECTURES[arch_index]
        timeline = faulty_timeline(
            [(node, start, start + length) for node, start, length in raw_events]
        )
        jobs = [
            JobSpec(
                name=f"job-{i}",
                gpus=groups * 8,
                tp_size=8,
                work_hours=work,
                submit_hour=submit,
            )
            for i, (groups, work, submit) in enumerate(raw_jobs)
        ]
        policy = policy_by_name(
            ("fifo", "smallest-first", "shortest-remaining")[policy_index],
            preemptive=preemptive,
        )
        report = ClusterScheduler(
            arch,
            timeline,
            jobs,
            policy=policy,
            horizon_hours=120.0,
            placement=PLACEMENT_NAMES[placement_index],
            backfill=backfill,
        ).run()
        for job in report.jobs:
            buckets = job.productive_hours + job.waiting_hours + job.restart_hours
            assert math.isclose(buckets, job.wall_clock_hours, abs_tol=1e-6)
            if job.finished and job.work_hours:
                assert job.finish_time_fairness >= 1.0 - 1e-9
