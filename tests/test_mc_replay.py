"""Batched Monte-Carlo replay (repro.mc) vs the scalar engines.

The contract under test: every per-seed result out of ``replay_batch`` is
**bit-for-bit** the scalar ``replay_intervals`` output for that seed's
timeline -- on every registry architecture, including the exact scalar
fallback (InfiniteHBD has no fault-count decomposition).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api.runner import ExperimentRunner
from repro.api.spec import ArchitectureSpec, ExperimentSpec, Scenario, TraceSpec
from repro.faults.events import event_log_from_intervals
from repro.faults.timeline import IntervalTimeline
from repro.faults.trace import FaultEvent, FaultTrace
from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
)
from repro.mc import (
    BatchTraceConfig,
    TraceBatch,
    kernel_for,
    replay_batch,
    sample_trace_batch,
    seed_stats,
)
from repro.simulation.cluster import replay_intervals

ARCHITECTURES = [
    BigSwitchHBD(4),
    NVLHBD(72, 4),
    NVLHBD(36, 4),
    TPUv4HBD(4, 64),
    SiPRingHBD(4),
    InfiniteHBDArchitecture(k=2, gpus_per_node=4),
]

TP_SIZES = (8, 32, 128)


def _timeline(n_nodes, duration_hours, runs, gpus_per_node=4):
    """Exact scalar timeline from (node, start, end) fault runs."""
    events = [
        FaultEvent(node_id=node, start_hour=float(start), end_hour=float(end))
        for node, start, end in runs
        if end > start
    ]
    trace = FaultTrace(
        n_nodes=n_nodes,
        duration_days=duration_hours / 24.0,
        events=events,
        gpus_per_node=gpus_per_node,
    )
    return IntervalTimeline.from_trace(trace)


def _assert_series_equal(got, ref):
    assert got.starts_hours == ref.starts_hours
    assert got.ends_hours == ref.ends_hours
    assert got.waste_ratios == ref.waste_ratios
    assert got.usable_gpus == ref.usable_gpus
    assert got.faulty_gpus == ref.faulty_gpus
    assert got.total_gpus == ref.total_gpus


# --------------------------------------------------------------------------
# hypothesis strategies
# --------------------------------------------------------------------------
DURATION = 48

run_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=23),          # node
        st.integers(min_value=0, max_value=DURATION - 1),  # start
        st.integers(min_value=1, max_value=DURATION),      # length
    ),
    max_size=25,
)

float_run_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=23),
        st.floats(min_value=0.0, max_value=DURATION - 0.5, allow_nan=False),
        st.floats(min_value=0.25, max_value=DURATION, allow_nan=False),
    ),
    max_size=25,
)


class TestBatchedMatchesScalar:
    @given(st.lists(run_lists, min_size=1, max_size=4), st.sampled_from(TP_SIZES))
    @settings(max_examples=60, deadline=None)
    def test_integer_time_traces_bit_for_bit(self, per_seed_runs, tp_size):
        timelines = [
            _timeline(24, float(DURATION), [(n, s, min(s + d, DURATION)) for n, s, d in runs])
            for runs in per_seed_runs
        ]
        batch = TraceBatch.from_timelines(timelines)
        for architecture in ARCHITECTURES:
            series = replay_batch(architecture, batch, tp_size)
            for index, timeline in enumerate(timelines):
                ref = replay_intervals(architecture, timeline, tp_size)
                _assert_series_equal(series.series_for_seed(index), ref)

    @given(st.lists(float_run_lists, min_size=1, max_size=3), st.sampled_from(TP_SIZES))
    @settings(max_examples=40, deadline=None)
    def test_float_time_traces_within_tolerance(self, per_seed_runs, tp_size):
        timelines = [
            _timeline(24, float(DURATION), [(n, s, min(s + d, DURATION)) for n, s, d in runs])
            for runs in per_seed_runs
        ]
        batch = TraceBatch.from_timelines(timelines)
        for architecture in ARCHITECTURES:
            series = replay_batch(architecture, batch, tp_size)
            for index, timeline in enumerate(timelines):
                ref = replay_intervals(architecture, timeline, tp_size)
                got = series.series_for_seed(index)
                # Integer capacity columns are always exact; float columns
                # must agree to full precision (the pipeline reuses the
                # scalar sweep's boundary floats).
                assert got.usable_gpus == ref.usable_gpus
                assert got.faulty_gpus == ref.faulty_gpus
                for a, b in zip(got.starts_hours, ref.starts_hours, strict=True):
                    assert math.isclose(a, b, rel_tol=0.0, abs_tol=0.0) or a == b
                for a, b in zip(got.waste_ratios, ref.waste_ratios, strict=True):
                    assert math.isclose(a, b, rel_tol=1e-15, abs_tol=1e-15)

    @pytest.mark.parametrize("architecture", ARCHITECTURES, ids=lambda a: a.name)
    def test_synthetic_batch_and_aggregates(self, architecture):
        batch = sample_trace_batch(
            BatchTraceConfig(n_seeds=4, n_nodes=64, duration_days=15, gpus_per_node=4, seed=9)
        )
        for tp_size in TP_SIZES:
            series = replay_batch(architecture, batch, tp_size)
            for index in range(batch.n_seeds):
                ref = replay_intervals(
                    architecture, batch.timeline_for_seed(index), tp_size
                )
                _assert_series_equal(series.series_for_seed(index), ref)
                assert series.mean_waste_ratios()[index] == ref.mean_waste_ratio
                assert series.p99_waste_ratios()[index] == ref.p99_waste_ratio
                assert series.min_usable_gpus()[index] == ref.min_usable_gpus
                assert (
                    series.supported_job_scales(0.99)[index]
                    == ref.supported_job_scale(0.99)
                )
                assert (
                    series.fault_waiting_rates(64)[index]
                    == ref.fault_waiting_rate(64)
                )

    def test_infinitehbd_uses_exact_scalar_fallback(self):
        architecture = InfiniteHBDArchitecture(k=2, gpus_per_node=4)
        assert architecture.fault_count_decomposition(24, 8) is None
        assert kernel_for(architecture, 24, 8) is None


class TestCorrelatedDifferential:
    """Correlated traces are ordinary traces to the batched engine.

    The overlay emits plain per-node events, so a correlated timeline must
    replay through ``replay_batch`` bit-for-bit equal to the scalar
    ``replay_intervals`` on every registry architecture -- same contract as
    the independent generator, no special-casing anywhere downstream.
    """

    def _correlated_timelines(self, correlations, seed=11):
        from repro.faults.correlated import CorrelatedFaultConfig, generate_correlated_trace
        from repro.faults.synthetic import SyntheticTraceConfig

        return [
            generate_correlated_trace(
                CorrelatedFaultConfig(
                    base=SyntheticTraceConfig(
                        n_nodes=64, duration_days=20, gpus_per_node=4, seed=seed
                    ),
                    correlation=c,
                    domain_rate_per_day=1.0,
                )
            ).interval_timeline()
            for c in correlations
        ]

    def test_correlated_batch_bit_for_bit_across_registry(self):
        timelines = self._correlated_timelines((0.0, 0.5, 1.0))
        batch = TraceBatch.from_timelines(timelines)
        for architecture in ARCHITECTURES:
            for tp_size in TP_SIZES:
                series = replay_batch(architecture, batch, tp_size)
                for index, timeline in enumerate(timelines):
                    ref = replay_intervals(architecture, timeline, tp_size)
                    _assert_series_equal(series.series_for_seed(index), ref)

    def test_correlation_zero_timeline_equals_independent(self):
        from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace

        zero = self._correlated_timelines((0.0,))[0]
        independent = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=64, duration_days=20, gpus_per_node=4, seed=11)
        ).interval_timeline()
        assert zero.intervals == independent.intervals
        assert np.array_equal(zero.event_log, independent.event_log)


class TestFaultCountDecompositions:
    @given(
        st.sets(st.integers(min_value=0, max_value=95), max_size=40),
        st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256]),
    )
    @settings(max_examples=120, deadline=None)
    def test_decomposition_matches_usable_gpus(self, faults, tp_size):
        n_nodes = 96
        for architecture in ARCHITECTURES:
            decomposition = architecture.fault_count_decomposition(n_nodes, tp_size)
            if decomposition is None:
                continue
            expected = architecture.usable_gpus(n_nodes, faults, tp_size)
            assert decomposition.usable_gpus(faults) == expected, architecture.name


class TestEventLogCanonical:
    def test_intervals_round_trip_through_the_log(self):
        timeline = _timeline(24, 48.0, [(3, 1, 7), (3, 5, 12), (9, 0, 48), (11, 47, 48)])
        rebuilt = event_log_from_intervals(timeline.intervals)
        assert np.array_equal(rebuilt, timeline.event_log)

    def test_batch_timeline_for_seed_round_trips(self):
        timeline = _timeline(24, 48.0, [(1, 2, 9), (5, 9, 20), (1, 8, 10)])
        batch = TraceBatch.from_timelines([timeline])
        recovered = batch.timeline_for_seed(0)
        assert recovered.intervals == timeline.intervals
        assert np.array_equal(recovered.event_log, timeline.event_log)


class TestSeedStats:
    def test_stddev_is_zero_when_seeds_share_a_trace(self):
        timeline = _timeline(24, 48.0, [(2, 1, 10), (7, 5, 30)])
        batch = TraceBatch.from_timelines([timeline, timeline, timeline])
        series = replay_batch(NVLHBD(72, 4), batch, 32)
        means = series.mean_waste_ratios()
        assert means[0] == means[1] == means[2]
        stats = seed_stats(means)
        assert stats.stddev == 0.0
        assert stats.ci95 == 0.0
        assert stats.mean == means[0]
        assert stats.n_seeds == 3

    def test_single_seed_degrades_to_point_estimate(self):
        stats = seed_stats([0.25])
        assert (stats.mean, stats.stddev, stats.ci95, stats.n_seeds) == (0.25, 0.0, 0.0, 1)

    def test_spread_matches_textbook_formulas(self):
        values = [1.0, 2.0, 4.0]
        stats = seed_stats(values)
        assert stats.mean == pytest.approx(7.0 / 3.0)
        variance = sum((v - stats.mean) ** 2 for v in values) / 2
        assert stats.stddev == pytest.approx(math.sqrt(variance))
        assert stats.ci95 == pytest.approx(1.96 * stats.stddev / math.sqrt(3))


# --------------------------------------------------------------------------
# spec / runner plumbing
# --------------------------------------------------------------------------
def _spec(num_seeds=1, experiments=("waste",)):
    return ExperimentSpec.of(
        scenario=Scenario(
            name="mc",
            trace=TraceSpec(days=4, seed=5),
            architectures=(
                ArchitectureSpec(name="Big-Switch"),
                ArchitectureSpec(name="NVL-72"),
            ),
            tp_sizes=(32,),
            n_nodes=192,
        ),
        experiments=experiments,
        options={"goodput": {"job_gpus": 256}} if "goodput" in experiments else None,
        max_workers=1,
        num_seeds=num_seeds,
    )


class TestSpecPlumbing:
    def test_single_seed_digest_is_unchanged(self):
        spec = _spec(num_seeds=1)
        assert "num_seeds" not in spec.to_dict()
        # A pre-num_seeds spec file (no such key) parses to the same digest.
        assert ExperimentSpec.from_dict(spec.to_dict()).digest() == spec.digest()

    def test_multi_seed_round_trips_and_changes_digest(self):
        spec = _spec(num_seeds=5)
        assert spec.to_dict()["num_seeds"] == 5
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.digest() != _spec(num_seeds=1).digest()

    def test_num_seeds_must_be_positive(self):
        with pytest.raises(ValueError, match="num_seeds"):
            _spec(num_seeds=0)

    def test_runner_override_becomes_the_effective_spec(self):
        runner = ExperimentRunner(_spec(num_seeds=1), num_seeds=3)
        assert runner.spec.num_seeds == 3
        assert runner.spec.digest() == _spec(num_seeds=3).digest()


class TestRunnerMonteCarlo:
    def test_multi_seed_results_grow_stats_columns(self):
        results = ExperimentRunner(_spec(num_seeds=3)).run()
        assert len(results) == 2
        for result in results:
            metrics = result.metrics_dict
            assert metrics["num_seeds"] == 3
            for name in ("mean_waste_ratio", "p99_waste_ratio", "min_usable_gpus"):
                assert f"{name}_mean" in metrics
                assert f"{name}_stddev" in metrics
                assert f"{name}_ci95" in metrics
                stats = result.metric_stats(name)
                assert stats["n_seeds"] == 3
                assert stats["stddev"] >= 0.0
            # Cluster constants keep their exact single-seed value and type.
            assert isinstance(metrics["total_gpus"], int)

    def test_single_seed_results_have_no_stats_columns(self):
        results = ExperimentRunner(_spec(num_seeds=1)).run()
        for result in results:
            metrics = result.metrics_dict
            assert "num_seeds" not in metrics
            assert not any(key.endswith("_stddev") for key in metrics)
            stats = result.metric_stats("mean_waste_ratio")
            assert stats["stddev"] == 0.0
            assert stats["n_seeds"] == 1

    def test_base_seed_values_and_series_match_single_seed_run(self):
        single = ExperimentRunner(_spec(num_seeds=1)).run()
        multi = ExperimentRunner(_spec(num_seeds=3)).run()
        for one, many in zip(single, multi, strict=True):
            # The emitted series is always the base (spec) seed's.
            assert one.series == many.series

    def test_stats_table_shape(self):
        table = ExperimentRunner(_spec(num_seeds=2)).run().stats_table(
            "waste", "mean_waste_ratio"
        )
        assert set(table) == {"Big-Switch", "NVL-72"}
        cell = table["NVL-72"][32]
        assert set(cell) == {"mean", "stddev", "ci95", "n_seeds"}
        assert cell["n_seeds"] == 2
