"""Tests for the step-synchronous collective schedule simulator."""

import pytest

from repro.collectives.cost_model import INFINITEHBD_GPU_LINK, LinkSpec
from repro.collectives.ring_allreduce import ring_allreduce_time
from repro.collectives.alltoall import binary_exchange_cost
from repro.simulation.schedule_sim import (
    LinkMap,
    ScheduleSimulator,
    Transfer,
    binary_exchange_schedule,
    ring_allreduce_schedule,
    simulate_degraded_ring,
)


class TestTransfer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Transfer(src="a", dst="a", size_bytes=10)
        with pytest.raises(ValueError):
            Transfer(src="a", dst="b", size_bytes=-1)


class TestLinkMap:
    def test_default_and_override(self):
        links = LinkMap(INFINITEHBD_GPU_LINK)
        assert links.link("a", "b") is INFINITEHBD_GPU_LINK
        slow = LinkSpec(bandwidth_gbps=100.0)
        links.set_link("a", "b", slow)
        assert links.link("a", "b") is slow
        assert links.link("b", "a") is slow
        assert links.link("a", "c") is INFINITEHBD_GPU_LINK

    def test_degrade_link(self):
        links = LinkMap(INFINITEHBD_GPU_LINK)
        links.degrade_link("a", "b", 0.25)
        assert links.link("a", "b").bandwidth_gbps == pytest.approx(1600.0)
        with pytest.raises(ValueError):
            links.degrade_link("a", "b", 0.0)


class TestSchedules:
    def test_ring_allreduce_schedule_shape(self):
        members = [f"g{i}" for i in range(8)]
        schedule = ring_allreduce_schedule(members, 8 * 1024.0)
        assert len(schedule) == 14
        assert all(len(round_) == 8 for round_ in schedule)
        assert schedule[0][0].size_bytes == pytest.approx(1024.0)

    def test_ring_schedule_degenerate(self):
        assert ring_allreduce_schedule(["only"], 100.0) == []
        assert ring_allreduce_schedule(["a", "b"], 0.0) == []

    def test_binary_exchange_schedule_shape(self):
        members = [f"g{i}" for i in range(8)]
        schedule = binary_exchange_schedule(members, 1024.0)
        assert len(schedule) == 3
        assert all(len(round_) == 8 for round_ in schedule)
        assert schedule[0][0].size_bytes == pytest.approx(4 * 1024.0)

    def test_binary_exchange_schedule_requires_power_of_two(self):
        with pytest.raises(ValueError):
            binary_exchange_schedule(["a", "b", "c"], 100.0)


class TestScheduleSimulator:
    def test_homogeneous_ring_matches_analytical_model(self):
        members = [f"g{i}" for i in range(16)]
        message = float(1 << 30)
        schedule = ring_allreduce_schedule(members, message)
        simulated = ScheduleSimulator(LinkMap(INFINITEHBD_GPU_LINK)).run(schedule)
        analytical = ring_allreduce_time(16, message, INFINITEHBD_GPU_LINK)
        assert simulated.total_time_s == pytest.approx(analytical.time_s, rel=1e-9)

    def test_homogeneous_binary_exchange_matches_analytical_model(self):
        members = [f"g{i}" for i in range(16)]
        block = float(1 << 20)
        schedule = binary_exchange_schedule(members, block)
        simulated = ScheduleSimulator(LinkMap(INFINITEHBD_GPU_LINK)).run(schedule)
        analytical = binary_exchange_cost(16, block, INFINITEHBD_GPU_LINK)
        assert simulated.total_time_s == pytest.approx(analytical.time_s, rel=1e-9)

    def test_reconfiguration_added_per_round(self):
        members = [f"g{i}" for i in range(8)]
        schedule = binary_exchange_schedule(members, 1024.0)
        sim = ScheduleSimulator(LinkMap(INFINITEHBD_GPU_LINK))
        with_reconfig = sim.run(schedule, reconfiguration_us_per_round=70.0)
        without = sim.run(schedule)
        assert with_reconfig.total_time_s - without.total_time_s == pytest.approx(3 * 70e-6)

    def test_slowest_transfer_identified(self):
        links = LinkMap(INFINITEHBD_GPU_LINK)
        links.degrade_link("g1", "g2", 0.1)
        members = [f"g{i}" for i in range(4)]
        schedule = ring_allreduce_schedule(members, float(1 << 24))
        result = ScheduleSimulator(links).run(schedule)
        slowest = result.critical_path[0]
        assert {slowest.src, slowest.dst} == {"g1", "g2"}

    def test_empty_schedule(self):
        result = ScheduleSimulator(LinkMap(INFINITEHBD_GPU_LINK)).run([])
        assert result.total_time_s == 0.0


class TestDegradedRing:
    def test_one_slow_link_slows_the_whole_ring(self):
        """Motivation for full-bandwidth single-path OCSTrx switching: the
        ring runs at the speed of its slowest hop."""
        healthy, degraded = simulate_degraded_ring(
            n_members=16,
            message_bytes=float(1 << 28),
            link=INFINITEHBD_GPU_LINK,
            degraded_pairs=[(3, 4)],
            degradation_factor=0.5,
        )
        assert degraded > healthy
        assert degraded == pytest.approx(healthy * 2.0, rel=0.1)

    def test_degradation_factor_one_is_noop(self):
        healthy, degraded = simulate_degraded_ring(
            8, float(1 << 20), INFINITEHBD_GPU_LINK, [(0, 1)], 1.0
        )
        assert healthy == pytest.approx(degraded)
