"""Tests for the GPU node model."""

import pytest

from repro.core.node import GPU, Node, make_nodes
from repro.hardware.ocstrx import PathState


class TestNode:
    def test_default_node_shape(self):
        node = Node(node_id=0)
        assert node.n_gpus == 4
        assert node.n_bundles == 2
        assert len(node.gpus) == 4
        assert len(node.bundles) == 2

    def test_eight_gpu_node(self):
        node = Node(node_id=1, n_gpus=8, n_bundles=3)
        assert node.n_gpus == 8
        assert len(node.bundles) == 3

    def test_gpu_ids_are_unique(self):
        node = Node(node_id=2, n_gpus=8, n_bundles=2)
        ids = [g.gpu_id for g in node.gpus]
        assert len(set(ids)) == 8

    def test_node_requires_even_gpu_count(self):
        with pytest.raises(ValueError):
            Node(node_id=0, n_gpus=3)

    def test_node_requires_at_least_two_gpus(self):
        with pytest.raises(ValueError):
            Node(node_id=0, n_gpus=0)

    def test_bundle_count_bounded_by_gpu_count(self):
        with pytest.raises(ValueError):
            Node(node_id=0, n_gpus=4, n_bundles=5)

    def test_fail_and_repair(self):
        node = Node(node_id=0)
        assert node.healthy
        assert node.healthy_gpu_count == 4
        node.fail()
        assert node.failed
        assert node.healthy_gpu_count == 0
        assert all(g.failed for g in node.gpus)
        assert all(b.failed for b in node.bundles)
        node.repair()
        assert node.healthy
        assert node.healthy_gpu_count == 4

    def test_bundle_access(self):
        node = Node(node_id=0)
        assert node.bundle(0).bundle_id == "n0/b0"
        assert node.bundle(1).bundle_id == "n0/b1"

    def test_bundle_states_start_dark(self):
        node = Node(node_id=0)
        assert all(s is PathState.DARK for s in node.bundle_states().values())

    def test_hbd_bandwidth_default(self):
        node = Node(node_id=0)
        assert node.hbd_bandwidth_gbps == pytest.approx(6400.0)


class TestMakeNodes:
    def test_make_nodes_count_and_ids(self):
        nodes = make_nodes(10, n_gpus=4, n_bundles=2)
        assert len(nodes) == 10
        assert [n.node_id for n in nodes] == list(range(10))

    def test_make_nodes_rejects_zero(self):
        with pytest.raises(ValueError):
            make_nodes(0)

    def test_gpu_dataclass_health(self):
        gpu = GPU(gpu_id="x", node_id=0, local_index=0)
        assert gpu.healthy
        gpu.failed = True
        assert not gpu.healthy
