"""Tests for the multi-dimensional parallelism planner (section 7)."""

import pytest

from repro.core.multidim import (
    DimensionTraffic,
    MultiDimensionPlanner,
    MultiDimPlan,
    MultiDimStrategy,
)


def gb(value: float) -> float:
    return value * 1e9


class TestValidation:
    def test_traffic_validation(self):
        with pytest.raises(ValueError):
            DimensionTraffic("tp", -1.0)
        with pytest.raises(ValueError):
            DimensionTraffic("tp", 1.0, phases=0)

    def test_planner_validation(self):
        with pytest.raises(ValueError):
            MultiDimensionPlanner(hbd_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            MultiDimensionPlanner(reconfiguration_us=-1)

    def test_empty_and_duplicate_dimensions_rejected(self):
        planner = MultiDimensionPlanner()
        with pytest.raises(ValueError):
            planner.independent_plan([])
        with pytest.raises(ValueError):
            planner.time_division_plan(
                [DimensionTraffic("tp", gb(1)), DimensionTraffic("tp", gb(2))]
            )


class TestIndependentInterconnects:
    def test_bandwidth_split_evenly(self):
        planner = MultiDimensionPlanner(hbd_bandwidth_gbps=6400)
        plan = planner.independent_plan(
            [DimensionTraffic("tp", gb(8)), DimensionTraffic("ep", gb(8))]
        )
        assert plan.per_dimension_bandwidth_gbps == {"tp": 3200.0, "ep": 3200.0}
        assert not plan.keeps_backup_links

    def test_slowest_dimension_dominates(self):
        planner = MultiDimensionPlanner(hbd_bandwidth_gbps=6400)
        plan = planner.independent_plan(
            [DimensionTraffic("tp", gb(80)), DimensionTraffic("ep", gb(1))]
        )
        # 80 GB over 400 GB/s (half of 800 GB/s)
        assert plan.communication_time_s == pytest.approx(0.2)
        assert plan.reconfiguration_time_s == 0.0

    def test_single_dimension_keeps_backups(self):
        planner = MultiDimensionPlanner()
        plan = planner.independent_plan([DimensionTraffic("tp", gb(1))])
        assert plan.keeps_backup_links
        assert plan.per_dimension_bandwidth_gbps["tp"] == 6400.0


class TestTimeDivision:
    def test_full_bandwidth_but_serialised(self):
        planner = MultiDimensionPlanner(hbd_bandwidth_gbps=6400)
        plan = planner.time_division_plan(
            [DimensionTraffic("tp", gb(80)), DimensionTraffic("ep", gb(80))]
        )
        assert plan.per_dimension_bandwidth_gbps["tp"] == 6400.0
        # 160 GB over 800 GB/s
        assert plan.communication_time_s == pytest.approx(0.2)

    def test_reconfiguration_charged_per_phase(self):
        planner = MultiDimensionPlanner(reconfiguration_us=70.0)
        plan = planner.time_division_plan(
            [
                DimensionTraffic("tp", gb(1), phases=4),
                DimensionTraffic("ep", gb(1), phases=2),
            ]
        )
        assert plan.reconfiguration_time_s == pytest.approx(6 * 70e-6)

    def test_single_dimension_needs_no_switching(self):
        planner = MultiDimensionPlanner()
        plan = planner.time_division_plan([DimensionTraffic("tp", gb(1), phases=10)])
        assert plan.reconfiguration_time_s == 0.0
        assert plan.keeps_backup_links


class TestComparison:
    def test_balanced_traffic_prefers_independent(self):
        """Two equally busy dimensions overlap on independent sub-fabrics."""
        planner = MultiDimensionPlanner()
        traffic = [DimensionTraffic("tp", gb(40)), DimensionTraffic("ep", gb(40))]
        assert planner.preferred_strategy(traffic) is MultiDimStrategy.INDEPENDENT

    def test_skewed_traffic_prefers_time_division(self):
        """A dominant dimension wants the whole fabric, not half of it."""
        planner = MultiDimensionPlanner()
        traffic = [DimensionTraffic("tp", gb(80)), DimensionTraffic("ep", gb(0.1))]
        assert planner.preferred_strategy(traffic) is MultiDimStrategy.TIME_DIVISION

    def test_compare_returns_both_plans(self):
        planner = MultiDimensionPlanner()
        plans = planner.compare([DimensionTraffic("tp", gb(1)), DimensionTraffic("cp", gb(1))])
        assert set(plans) == {"independent_interconnects", "time_division"}
        assert all(isinstance(p, MultiDimPlan) for p in plans.values())

    def test_total_time_includes_reconfiguration(self):
        plan = MultiDimPlan(
            strategy=MultiDimStrategy.TIME_DIVISION,
            per_dimension_bandwidth_gbps={"tp": 6400.0},
            communication_time_s=1.0,
            reconfiguration_time_s=0.5,
            keeps_backup_links=False,
        )
        assert plan.total_time_s == pytest.approx(1.5)
