"""Tests for the Rail-Optimized DCN model."""

import networkx as nx
import pytest

from repro.dcn.railopt import RailOptimized, RailOptimizedConfig, RailTrafficModel


def make(n_nodes=64, r=4, nodes_per_pod=16):
    return RailOptimized(
        RailOptimizedConfig(n_nodes=n_nodes, gpus_per_node=r, nodes_per_pod=nodes_per_pod)
    )


class TestConfig:
    def test_pod_count(self):
        config = RailOptimizedConfig(n_nodes=64, gpus_per_node=4, nodes_per_pod=16)
        assert config.n_pods == 4
        assert config.rails_per_pod == 4

    def test_partial_pod(self):
        config = RailOptimizedConfig(n_nodes=20, nodes_per_pod=16)
        assert config.n_pods == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RailOptimizedConfig(n_nodes=0)
        with pytest.raises(ValueError):
            RailOptimizedConfig(n_nodes=4, nodes_per_pod=0)


class TestLocality:
    def test_pod_of(self):
        fabric = make()
        assert fabric.pod_of(0) == 0
        assert fabric.pod_of(15) == 0
        assert fabric.pod_of(16) == 1

    def test_rail_identity(self):
        fabric = make()
        assert fabric.rail_of(3, 2) == (0, 2)
        assert fabric.rail_of(17, 2) == (1, 2)

    def test_same_rail_requires_same_pod_and_index(self):
        fabric = make()
        assert fabric.same_rail(0, 1, 5, 1)
        assert not fabric.same_rail(0, 1, 5, 2)
        assert not fabric.same_rail(0, 1, 20, 1)

    def test_switch_hops(self):
        fabric = make()
        assert fabric.switch_hops(0, 0, 0, 0) == 0
        assert fabric.switch_hops(0, 1, 5, 1) == 1    # same rail
        assert fabric.switch_hops(0, 1, 5, 2) == 3    # same pod, other rail
        assert fabric.switch_hops(0, 1, 20, 1) == 5   # cross pod

    def test_nodes_in_pod(self):
        fabric = make()
        assert fabric.nodes_in_pod(1) == list(range(16, 32))
        with pytest.raises(ValueError):
            fabric.nodes_in_pod(10)

    def test_bad_inputs(self):
        fabric = make()
        with pytest.raises(ValueError):
            fabric.pod_of(999)
        with pytest.raises(ValueError):
            fabric.rail_of(0, 9)


class TestGraph:
    def test_graph_structure(self):
        fabric = make(n_nodes=8, r=2, nodes_per_pod=4)
        g = fabric.graph()
        kinds = nx.get_node_attributes(g, "kind")
        assert sum(1 for k in kinds.values() if k == "gpu") == 16
        assert sum(1 for k in kinds.values() if k == "rail") == 4
        assert nx.is_connected(g)

    def test_same_rail_gpus_two_hops_apart(self):
        fabric = make(n_nodes=8, r=2, nodes_per_pod=4)
        g = fabric.graph()
        assert nx.shortest_path_length(g, (0, 1), (3, 1)) == 2
        assert nx.shortest_path_length(g, (0, 1), (3, 0)) == 4


class TestRailTrafficModel:
    def test_pod_local_placement_needs_no_spine(self):
        fabric = make()
        model = RailTrafficModel(fabric)
        placement = [[0, 1], [2, 3], [4, 5], [6, 7]]  # all in pod 0
        assert model.cross_spine_fraction(placement) == 0.0

    def test_cross_pod_placement_uses_spine(self):
        fabric = make()
        model = RailTrafficModel(fabric)
        placement = [[0, 1], [2, 3], [16, 17], [18, 19]]  # two pods in one set
        assert model.cross_spine_fraction(placement) > 0.0

    def test_single_group_is_free(self):
        fabric = make()
        model = RailTrafficModel(fabric)
        assert model.cross_spine_fraction([[0, 1, 2]]) == 0.0

    def test_mismatched_group_sizes_rejected(self):
        fabric = make()
        model = RailTrafficModel(fabric)
        with pytest.raises(ValueError):
            model.cross_spine_fraction([[0, 1], [2]])

    def test_local_set_size_validation(self):
        fabric = make()
        with pytest.raises(ValueError):
            RailTrafficModel(fabric, local_set_size=0)
