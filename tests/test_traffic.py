"""Tests for the cross-ToR traffic model."""

import pytest

from repro.dcn.fattree import FatTree, FatTreeConfig
from repro.dcn.traffic import CrossToRReport, TrafficModel, TrafficVolumes


def make_model(n_nodes=64, p=4, tors_per_domain=4, volumes=None):
    tree = FatTree(FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=p,
                                 tors_per_domain=tors_per_domain))
    return TrafficModel(tree, volumes=volumes)


class TestTrafficVolumes:
    def test_dcn_share(self):
        v = TrafficVolumes(tp_volume=9.0, outer_volume=1.0)
        assert v.dcn_share == pytest.approx(0.1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TrafficVolumes(tp_volume=-1.0, outer_volume=1.0)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            TrafficVolumes(tp_volume=0.0, outer_volume=0.0)


class TestTrafficModel:
    def test_empty_placement(self):
        report = make_model().evaluate([])
        assert report.cross_tor_rate == 0.0
        assert report.placed_groups == 0

    def test_fully_aligned_placement_is_nearly_zero(self):
        """Groups whose rank-k nodes share ToRs keep tier-1 traffic local."""
        model = make_model()
        # 4 groups, one per intra-ToR index, covering ToRs 0 and 1.
        placement = [
            [0, 4],   # intra-ToR index 0, ToRs 0 and 1
            [1, 5],   # index 1
            [2, 6],   # index 2
            [3, 7],   # index 3
        ]
        report = model.evaluate(placement)
        assert report.tier1_cross_edges == 0
        assert report.cross_tor_rate == 0.0

    def test_misaligned_placement_crosses_tors(self):
        model = make_model()
        # Same groups but one group shifted to different ToRs.
        placement = [
            [0, 4],
            [1, 5],
            [2, 6],
            [11, 15],  # lives under ToRs 2 and 3 -> misaligned
        ]
        report = model.evaluate(placement)
        assert report.tier1_cross_edges > 0
        assert report.cross_tor_rate > 0.0

    def test_cross_rate_bounded_by_dcn_share(self):
        volumes = TrafficVolumes(tp_volume=9.0, outer_volume=1.0)
        model = make_model(volumes=volumes)
        # Fully scattered placement: every group in a different ToR pair.
        placement = [[i * 8, i * 8 + 4] for i in range(8)]
        report = model.evaluate(placement)
        assert report.cross_tor_rate <= volumes.dcn_share + 1e-9

    def test_second_tier_always_counted(self):
        model = make_model()
        placement = [
            [0, 4], [1, 5], [2, 6], [3, 7],          # set 1 (ToRs 0-1)
            [8, 12], [9, 13], [10, 14], [11, 15],    # set 2 (ToRs 2-3)
        ]
        report = model.evaluate(placement)
        assert report.tier1_cross_edges == 0
        assert report.tier2_edges > 0
        assert 0.0 < report.cross_tor_rate < model.volumes.dcn_share

    def test_groups_must_have_equal_size(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.evaluate([[0, 4], [1]])

    def test_report_totals_scale_with_nodes(self):
        model = make_model()
        small = model.evaluate([[0, 4], [1, 5], [2, 6], [3, 7]])
        large = model.evaluate(
            [[0, 4], [1, 5], [2, 6], [3, 7], [8, 12], [9, 13], [10, 14], [11, 15]]
        )
        assert large.total_volume == pytest.approx(2 * small.total_volume)

    def test_tier1_cross_fraction(self):
        report = CrossToRReport(
            total_volume=100.0,
            cross_tor_volume=5.0,
            tier1_edges=20,
            tier1_cross_edges=5,
            tier2_edges=2,
            placed_groups=8,
        )
        assert report.tier1_cross_fraction == pytest.approx(0.25)
        assert report.cross_tor_rate == pytest.approx(0.05)

    def test_local_set_size_validation(self):
        tree = FatTree(FatTreeConfig(n_nodes=16, nodes_per_tor=4, tors_per_domain=2))
        with pytest.raises(ValueError):
            TrafficModel(tree, local_set_size=0)

    def test_single_group_has_no_outer_edges(self):
        model = make_model()
        report = model.evaluate([[0, 4, 8, 12]])
        assert report.tier1_edges == 0
        assert report.tier2_edges == 0
        assert report.cross_tor_rate == 0.0
