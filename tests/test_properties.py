"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import assume, given, settings, strategies as st

from repro.collectives.alltoall import binary_exchange_alltoall, pairwise_exchange_alltoall
from repro.collectives.cost_model import LinkSpec
from repro.collectives.ring_allreduce import ring_allreduce_utilization
from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.orchestrator import deployment_strategy, orchestrate_dcn_free
from repro.dcn.fattree import FatTree, FatTreeConfig
from repro.faults.convert import node_fault_probability, per_gpu_fault_probability
from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
)
from repro.training.comm import tp_allreduce_volume_per_layer


# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------
topology_params = st.tuples(
    st.integers(min_value=4, max_value=120),   # n_nodes
    st.integers(min_value=1, max_value=4),     # k
    st.sampled_from([4, 8]),                   # gpus per node
    st.booleans(),                             # ring or line
)

fault_sets = st.sets(st.integers(min_value=0, max_value=119), max_size=40)

tp_sizes = st.sampled_from([4, 8, 16, 32, 64])


class TestKHopInvariants:
    @given(topology_params, fault_sets, tp_sizes)
    @settings(max_examples=80, deadline=None)
    def test_usable_plus_wasted_equals_healthy(self, params, faults, tp):
        n, k, r, ring = params
        topo = KHopRingTopology(KHopTopologyConfig(n, k, r, ring))
        faults = {f for f in faults if f < n}
        usable = topo.usable_gpus(faults, tp)
        wasted = topo.wasted_gpus(faults, tp)
        healthy = (n - len(faults)) * r
        assert usable + wasted == healthy
        assert usable % tp == 0
        assert 0 <= usable <= healthy

    @given(topology_params, fault_sets)
    @settings(max_examples=60, deadline=None)
    def test_segments_partition_healthy_nodes(self, params, faults):
        n, k, r, ring = params
        topo = KHopRingTopology(KHopTopologyConfig(n, k, r, ring))
        faults = {f for f in faults if f < n}
        segments = topo.healthy_segments(faults)
        seen = [node for seg in segments for node in seg.nodes]
        assert sorted(seen) == sorted(set(range(n)) - faults)
        assert len(seen) == len(set(seen))

    @given(topology_params, fault_sets, tp_sizes)
    @settings(max_examples=60, deadline=None)
    def test_larger_k_never_wastes_more(self, params, faults, tp):
        n, k, r, ring = params
        assume(k < 4)
        faults = {f for f in faults if f < n}
        small = KHopRingTopology(KHopTopologyConfig(n, k, r, ring))
        large = KHopRingTopology(KHopTopologyConfig(n, k + 1, r, ring))
        assert large.usable_gpus(faults, tp) >= small.usable_gpus(faults, tp)

    @given(topology_params, fault_sets)
    @settings(max_examples=60, deadline=None)
    def test_adjacent_segment_nodes_within_k_hops(self, params, faults):
        n, k, r, ring = params
        topo = KHopRingTopology(KHopTopologyConfig(n, k, r, ring))
        faults = {f for f in faults if f < n}
        for segment in topo.healthy_segments(faults):
            for a, b in zip(segment.nodes, segment.nodes[1:]):
                assert topo.hop_distance(a, b) <= k


class TestArchitectureInvariants:
    architectures = st.sampled_from(
        [
            InfiniteHBDArchitecture(k=2, gpus_per_node=4),
            InfiniteHBDArchitecture(k=3, gpus_per_node=4),
            BigSwitchHBD(gpus_per_node=4),
            TPUv4HBD(gpus_per_node=4),
            NVLHBD(36, gpus_per_node=4),
            NVLHBD(72, gpus_per_node=4),
            SiPRingHBD(gpus_per_node=4),
        ]
    )

    @given(architectures, st.sets(st.integers(0, 287), max_size=60), tp_sizes)
    @settings(max_examples=100, deadline=None)
    def test_breakdown_invariants(self, arch, faults, tp):
        breakdown = arch.breakdown(288, faults, tp)
        assert breakdown.usable_gpus % tp == 0
        assert 0 <= breakdown.usable_gpus <= breakdown.healthy_gpus
        assert 0.0 <= breakdown.waste_ratio <= 1.0
        assert breakdown.faulty_gpus == len({f for f in faults if f < 288}) * 4

    @given(architectures, st.sets(st.integers(0, 287), max_size=40), tp_sizes)
    @settings(max_examples=60, deadline=None)
    def test_big_switch_upper_bounds_everyone(self, arch, faults, tp):
        ideal = BigSwitchHBD(gpus_per_node=4)
        assert arch.usable_gpus(288, faults, tp) <= ideal.usable_gpus(288, faults, tp)

    @given(st.sets(st.integers(0, 287), max_size=30), tp_sizes)
    @settings(max_examples=60, deadline=None)
    def test_more_faults_never_increase_usable(self, faults, tp):
        arch = InfiniteHBDArchitecture(k=2, gpus_per_node=4)
        base = arch.usable_gpus(288, faults, tp)
        more = set(faults) | {0, 143, 287}
        assert arch.usable_gpus(288, more, tp) <= base


class TestCollectiveProperties:
    @given(st.integers(0, 5), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_binary_exchange_is_a_transpose(self, log_p, payload):
        p = 2 ** log_p
        blocks = [[(src * payload, dst) for dst in range(p)] for src in range(p)]
        result = binary_exchange_alltoall(blocks)
        for i in range(p):
            for j in range(p):
                assert result[i][j] == blocks[j][i]

    @given(st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_pairwise_equals_binary_exchange(self, log_p):
        p = 2 ** log_p
        blocks = [[f"{s}.{d}" for d in range(p)] for s in range(p)]
        assert pairwise_exchange_alltoall(blocks) == binary_exchange_alltoall(blocks)

    @given(
        st.integers(min_value=2, max_value=128),
        st.floats(min_value=1e6, max_value=1e10),
        st.floats(min_value=10.0, max_value=6400.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_utilization_bounded(self, n, message, bandwidth):
        link = LinkSpec(bandwidth_gbps=bandwidth, latency_us=2.0, protocol_efficiency=0.9)
        util = ring_allreduce_utilization(n, message, link)
        assert 0.0 <= util <= link.protocol_efficiency + 1e-9


class TestOrchestrationProperties:
    @given(
        st.integers(min_value=2, max_value=50),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_deployment_is_a_permutation(self, tors, k, p):
        n = tors * p
        plan = deployment_strategy(n, k, p)
        assert sorted(plan.order) == list(range(n))

    @given(
        st.integers(min_value=8, max_value=64),
        st.sets(st.integers(0, 63), max_size=20),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_dcn_free_placement_invariants(self, n, faults, m, k):
        faults = {f for f in faults if f < n}
        groups = orchestrate_dcn_free(list(range(n)), k, faults, m)
        placed = [node for g in groups for node in g.nodes]
        assert len(placed) == len(set(placed))
        assert set(placed).isdisjoint(faults)
        assert all(len(g) == m for g in groups)
        # groups are ordered runs: consecutive nodes within a group are at
        # most k apart in the original sequence
        for g in groups:
            for a, b in zip(g.nodes, g.nodes[1:]):
                assert 0 < b - a <= k


class TestProbabilityProperties:
    @given(st.floats(min_value=0.0, max_value=0.5), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_fault_probability_roundtrip(self, ratio, r):
        p = per_gpu_fault_probability(ratio, r)
        assert abs(node_fault_probability(p, r) - ratio) < 1e-9

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8192),
        st.integers(min_value=64, max_value=65536),
        st.integers(min_value=2, max_value=128),
    )
    @settings(max_examples=60, deadline=None)
    def test_tp_volume_monotone_in_group_size(self, b, s, h, n):
        smaller = tp_allreduce_volume_per_layer(b, s, h, n)
        larger = tp_allreduce_volume_per_layer(b, s, h, n * 2)
        assert larger >= smaller


class TestFatTreeProperties:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_node_has_consistent_hierarchy(self, n, p, tors_per_domain):
        tree = FatTree(FatTreeConfig(n_nodes=n, nodes_per_tor=p,
                                     tors_per_domain=tors_per_domain))
        for node in range(n):
            tor = tree.tor_of(node)
            assert node in tree.nodes_in_tor(tor)
            domain = tree.domain_of(node)
            assert node in tree.nodes_in_domain(domain)
            assert 0 <= tree.intra_tor_index(node) < p
