"""Tests for the HBD architecture models (InfiniteHBD + all baselines)."""

import pytest

from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
    architecture_by_name,
    default_architectures,
)
from repro.hbd.base import WasteBreakdown


class TestWasteBreakdown:
    def test_accounting_identities(self):
        b = WasteBreakdown(total_gpus=100, faulty_gpus=8, usable_gpus=80)
        assert b.healthy_gpus == 92
        assert b.wasted_gpus == 12
        assert b.waste_ratio == pytest.approx(0.12)
        assert b.unavailable_ratio == pytest.approx(0.20)

    def test_zero_cluster(self):
        b = WasteBreakdown(total_gpus=0, faulty_gpus=0, usable_gpus=0)
        assert b.waste_ratio == 0.0
        assert b.unavailable_ratio == 0.0


class TestBigSwitch:
    def test_no_faults_only_global_remainder(self):
        arch = BigSwitchHBD(gpus_per_node=4)
        assert arch.usable_gpus(720, set(), 32) == 2880
        assert arch.usable_gpus(721, set(), 32) == 2880

    def test_faults_only_remove_faulty_gpus(self):
        arch = BigSwitchHBD(gpus_per_node=4)
        breakdown = arch.breakdown(720, {1, 2, 3}, 32)
        assert breakdown.faulty_gpus == 12
        assert breakdown.wasted_gpus <= 31

    def test_waste_bounded_by_tp_size(self):
        arch = BigSwitchHBD(gpus_per_node=4)
        for n_fault in range(0, 30):
            waste = arch.breakdown(720, set(range(n_fault)), 64).wasted_gpus
            assert waste < 64


class TestNVL:
    def test_fragmentation_matches_paper_formula(self):
        """NVL-36 with TP-16 wastes (36 mod 16)/36 = 11.1% (paper section 2.1)."""
        arch = NVLHBD(36, gpus_per_node=4)
        assert arch.waste_ratio(9, set(), 16) == pytest.approx(4 / 36)

    def test_nvl72_tp32_fragmentation(self):
        arch = NVLHBD(72, gpus_per_node=4)
        assert arch.waste_ratio(18, set(), 32) == pytest.approx(8 / 72)

    def test_per_unit_independent_fragmentation(self):
        arch = NVLHBD(36, gpus_per_node=4)
        # two units of 9 nodes each; a single fault in unit 0
        breakdown = arch.breakdown(18, {0}, 16)
        # unit 0: 32 healthy -> 32 usable; unit 1: 36 -> 32 usable
        assert breakdown.usable_gpus == 64

    def test_tp_larger_than_unit_unusable(self):
        arch = NVLHBD(36, gpus_per_node=4)
        assert arch.usable_gpus(18, set(), 64) == 0

    def test_paper_example_two_hbd_32(self):
        """Section 1: two 32-GPU HBDs with one failure each waste 30 GPUs for TP-16."""
        arch = NVLHBD(32, gpus_per_node=4)
        breakdown = arch.breakdown(16, {0, 8}, 16)
        # each unit: 28 healthy -> 16 usable, 12 wasted
        assert breakdown.wasted_gpus == 24
        combined = NVLHBD(64, gpus_per_node=4)
        combined_breakdown = combined.breakdown(16, {0, 8}, 16)
        # combined unit: 56 healthy -> 48 usable, 8 wasted
        assert combined_breakdown.wasted_gpus == 8

    def test_leftover_partial_unit_used(self):
        arch = NVLHBD(72, gpus_per_node=4)
        # 20 nodes = one full 18-node unit + 2 leftover nodes (8 GPUs)
        assert arch.usable_gpus(20, set(), 8) == 80

    def test_rejects_bad_hbd_size(self):
        with pytest.raises(ValueError):
            NVLHBD(3, gpus_per_node=4)
        with pytest.raises(ValueError):
            NVLHBD(38, gpus_per_node=4)

    def test_name(self):
        assert NVLHBD(576, 4).name == "NVL-576"


class TestTPUv4:
    def test_no_faults_no_waste_for_power_of_two_tp(self):
        arch = TPUv4HBD(gpus_per_node=4)
        assert arch.waste_ratio(64, set(), 32) == 0.0

    def test_single_fault_wastes_within_cube(self):
        arch = TPUv4HBD(gpus_per_node=4)
        # 4 cubes of 16 nodes; one fault in cube 0
        breakdown = arch.breakdown(64, {0}, 32)
        # cube 0: 60 healthy -> 32 usable (28 wasted); others full
        assert breakdown.usable_gpus == 32 + 3 * 64
        assert breakdown.wasted_gpus == 28

    def test_large_tp_kills_whole_faulty_cube(self):
        arch = TPUv4HBD(gpus_per_node=4)
        breakdown = arch.breakdown(64, {0}, 64)
        assert breakdown.usable_gpus == 3 * 64
        assert breakdown.wasted_gpus == 60

    def test_tp_spanning_cubes_uses_healthy_cubes_only(self):
        arch = TPUv4HBD(gpus_per_node=4)
        assert arch.usable_gpus(64, set(), 128) == 256
        assert arch.usable_gpus(64, {0}, 128) == 128

    def test_small_tp_less_affected(self):
        arch = TPUv4HBD(gpus_per_node=4)
        assert arch.breakdown(64, {0}, 8).wasted_gpus == 4

    def test_cube_counts(self):
        arch = TPUv4HBD(gpus_per_node=4)
        assert arch.nodes_per_cube == 16
        assert arch.n_cubes(720) == 45


class TestSiPRing:
    def test_no_faults_no_waste(self):
        arch = SiPRingHBD(gpus_per_node=4)
        assert arch.waste_ratio(720, set(), 32) == 0.0

    def test_single_fault_kills_whole_ring(self):
        arch = SiPRingHBD(gpus_per_node=4)
        breakdown = arch.breakdown(720, {0}, 32)
        # the 8-node ring containing node 0 is lost entirely
        assert breakdown.usable_gpus == 2880 - 32
        assert breakdown.wasted_gpus == 28

    def test_two_faults_same_ring_waste_less(self):
        arch = SiPRingHBD(gpus_per_node=4)
        same_ring = arch.breakdown(720, {0, 1}, 32)
        different_rings = arch.breakdown(720, {0, 8}, 32)
        assert same_ring.wasted_gpus == 24
        assert different_rings.wasted_gpus == 56

    def test_waste_scales_with_tp_size(self):
        arch = SiPRingHBD(gpus_per_node=4)
        assert (
            arch.breakdown(720, {0}, 64).wasted_gpus
            > arch.breakdown(720, {0}, 8).wasted_gpus
        )


class TestInfiniteHBD:
    def test_k3_matches_big_switch_under_scattered_faults(self):
        """InfiniteHBD (K=3) tracks the Big-Switch ideal (section 6.2)."""
        infinite = InfiniteHBDArchitecture(k=3, gpus_per_node=4)
        ideal = BigSwitchHBD(gpus_per_node=4)
        faulty = {10, 50, 100, 200, 300, 500, 640}
        assert infinite.usable_gpus(720, faulty, 32) == ideal.usable_gpus(720, faulty, 32)

    def test_k2_breaks_on_double_fault(self):
        """Two consecutive faults are a breakpoint for K=2 but not for K=3."""
        k2 = InfiniteHBDArchitecture(k=2, gpus_per_node=4)
        k3 = InfiniteHBDArchitecture(k=3, gpus_per_node=4)
        # A 16-node ring cut by two double-fault gaps cannot host any TP-32
        # group with K=2 (two 6-node fragments), while K=3 bridges both gaps
        # and still forms one group.
        faulty = {3, 4, 11, 12}
        assert k2.usable_gpus(16, faulty, 32) == 0
        assert k3.usable_gpus(16, faulty, 32) == 32
        # Adding the second fault never increases the usable GPU count.
        assert k2.usable_gpus(720, {100, 101}, 32) <= k2.usable_gpus(720, {100}, 32)

    def test_breakpoints_exposed(self):
        arch = InfiniteHBDArchitecture(k=2, gpus_per_node=4)
        assert arch.breakpoints(720, {100, 101}) == 1
        assert arch.breakpoints(720, {100, 102}) == 0

    def test_waste_far_below_nvl_under_faults(self):
        """Headline comparison: InfiniteHBD >= 10x lower waste than NVL-72."""
        faulty = {7, 33, 121, 250, 404, 555, 600, 701}
        infinite = InfiniteHBDArchitecture(k=3, gpus_per_node=4)
        nvl = NVLHBD(72, gpus_per_node=4)
        assert nvl.waste_ratio(720, faulty, 32) > 10 * infinite.waste_ratio(720, faulty, 32)

    def test_topology_cache_reused(self):
        arch = InfiniteHBDArchitecture(k=2)
        assert arch.topology(100) is arch.topology(100)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            InfiniteHBDArchitecture(k=0)


class TestRegistry:
    def test_default_lineup(self):
        names = [a.name for a in default_architectures(4)]
        assert names == [
            "InfiniteHBD(K=2)",
            "InfiniteHBD(K=3)",
            "Big-Switch",
            "TPUv4",
            "NVL-36",
            "NVL-72",
            "NVL-576",
            "SiP-Ring",
        ]

    def test_lookup_by_name(self):
        arch = architecture_by_name("nvl-72")
        assert isinstance(arch, NVLHBD)
        assert arch.hbd_size == 72

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            architecture_by_name("dojo")

    def test_usable_never_exceeds_healthy(self):
        faulty = set(range(0, 100, 7))
        for arch in default_architectures(4):
            breakdown = arch.breakdown(288, faulty, 32)
            assert breakdown.usable_gpus <= breakdown.healthy_gpus
            assert breakdown.usable_gpus % 32 == 0
