"""Documentation build checks: intra-repo links and generated references.

These tests are the "docs build" CI gate: every relative link in the curated
documentation set must resolve to a real file (and, for ``#fragment`` links,
to a real heading), and the generated CLI reference must match the live
argparse output byte for byte so documented help text cannot drift from
``--help``.
"""

import re
from pathlib import Path

import pytest

from repro.cli import _DOC_EXAMPLES, iter_subcommands, render_cli_reference

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The curated documentation set the link check gates (PAPERS.md and
#: SNIPPETS.md are retrieved reference material, not maintained docs).
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _links(path: Path):
    text = _FENCE.sub("", path.read_text())
    return _LINK.findall(text)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (backticks etc. stripped)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _heading_slugs(path: Path):
    text = _FENCE.sub("", path.read_text())
    return {_github_slug(h) for h in _HEADING.findall(text)}


def test_doc_set_is_complete():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "ROADMAP.md", "architecture.md", "api.md",
            "metrics.md", "cli.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(path):
    broken = []
    for target in _links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if not resolved.exists():
            broken.append(target)
            continue
        if fragment and resolved.suffix == ".md":
            if _github_slug(fragment) not in _heading_slugs(resolved):
                broken.append(target)
    assert not broken, f"{path.name}: broken intra-repo links {broken}"


def test_docs_link_to_each_other():
    """The index reaches every docs page and the README reaches the index."""
    index_targets = {t.partition("#")[0] for t in _links(REPO_ROOT / "docs" / "README.md")}
    assert {"architecture.md", "api.md", "metrics.md", "cli.md"} <= index_targets
    readme_targets = {t.partition("#")[0] for t in _links(REPO_ROOT / "README.md")}
    assert "docs/README.md" in readme_targets


class TestCliReference:
    def test_cli_reference_matches_argparse_output(self):
        """docs/cli.md is generated; regenerating must be a no-op.

        Regenerate with ``python -m repro.cli docs > docs/cli.md`` after any
        CLI change.
        """
        on_disk = (REPO_ROOT / "docs" / "cli.md").read_text()
        assert on_disk == render_cli_reference()

    def test_every_subcommand_is_documented_with_an_example(self):
        names = [name for name, _ in iter_subcommands()]
        assert names, "CLI has no subcommands?"
        assert set(names) == set(_DOC_EXAMPLES)
        reference = render_cli_reference()
        for name in names:
            assert f"## `{name}`" in reference
            assert _DOC_EXAMPLES[name] in reference

    def test_docs_subcommand_output_matches_renderer(self):
        from repro.cli import main

        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main(["docs"]) == 0
        assert buffer.getvalue() == render_cli_reference()


class TestPolicyRegistryDrift:
    """Every registered scheduling policy must be documented by name.

    The CLI help enumerates ``POLICY_NAMES`` dynamically, so a policy added
    to the registry appears in ``docs/cli.md`` on regeneration; this check
    also keeps the hand-written policy definitions in ``docs/metrics.md``
    from silently falling behind the registry.
    """

    @pytest.mark.parametrize("doc", ["cli.md", "metrics.md"])
    def test_every_policy_name_is_documented(self, doc):
        from repro.scheduler.policies import POLICY_NAMES

        text = (REPO_ROOT / "docs" / doc).read_text()
        missing = [name for name in POLICY_NAMES if name not in text]
        assert not missing, f"docs/{doc} does not mention policies: {missing}"
