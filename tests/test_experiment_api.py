"""Tests for the Unified Experiment API (repro.api).

Covers the satellite checklist: Scenario / ExperimentSpec JSON round-trip,
registry registration / override / unknown-name errors, and runner
determinism (same seed => identical ExperimentResult), plus the CLI ``run
--spec`` path end to end.
"""

import json

import pytest

from repro.api import (
    REGISTRY,
    ArchitectureRegistry,
    ArchitectureSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    JobSpec,
    ResultSet,
    Scenario,
    SchedulerSpec,
    TraceSpec,
    WorkloadSpec,
    default_architecture_specs,
    run_experiment,
)
from repro.hbd import NVLHBD, architecture_by_name, list_architectures
from repro.hbd.registry import DEFAULT_LINEUP


def small_spec(experiments=("waste",), **scenario_overrides):
    scenario_overrides.setdefault("trace", TraceSpec(days=20, seed=348))
    scenario_overrides.setdefault(
        "architectures",
        (ArchitectureSpec(name="InfiniteHBD(K=3)"), ArchitectureSpec(name="NVL-72")),
    )
    scenario_overrides.setdefault("tp_sizes", (16, 32))
    scenario_overrides.setdefault("n_nodes", 288)
    scenario_overrides.setdefault("job_gpus", 1024)
    return ExperimentSpec.of(
        scenario=Scenario(name="small", **scenario_overrides),
        experiments=experiments,
    )


class TestSpecRoundTrip:
    def test_trace_spec_round_trip(self):
        spec = TraceSpec(days=30, seed=7, gpus_per_node=8)
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_trace_spec_rejects_bad_gpus_per_node(self):
        with pytest.raises(ValueError):
            TraceSpec(gpus_per_node=6)

    def test_trace_build_is_memoized(self):
        spec = TraceSpec(days=15, seed=123)
        assert spec.build() is spec.build()
        assert spec.build().gpus_per_node == 4

    def test_scenario_round_trip(self):
        scenario = Scenario.default("rt", trace=TraceSpec(days=10), tp_sizes=(8, 32))
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_experiment_spec_json_round_trip(self):
        spec = ExperimentSpec.of(
            scenario=Scenario.default("json-rt", trace=TraceSpec(days=10)),
            experiments=("waste", "goodput"),
            options={"fault_waiting": {"job_scales": [1024, 2048]}},
            max_workers=2,
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_architecture_spec_accepts_bare_string(self):
        spec = ArchitectureSpec.from_dict("NVL-72")
        assert spec.build().name == "NVL-72"

    def test_architecture_spec_params_round_trip(self):
        spec = ArchitectureSpec.of("infinitehbd", k=3)
        restored = ArchitectureSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.build().name == "InfiniteHBD(K=3)"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            small_spec(experiments=("warp-drive",))

    def test_options_for_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="options for unknown"):
            ExperimentSpec.of(
                scenario=Scenario.default("typo"),
                experiments=("fault_waiting",),
                options={"fault_wating": {"job_scales": [1024]}},
            )

    def test_unknown_spec_field_rejected(self):
        scenario = Scenario.default("strict").to_dict()
        scenario["typo_field"] = 1
        with pytest.raises(ValueError, match="typo_field"):
            Scenario.from_dict(scenario)

    def test_deprecated_goodput_sample_interval_scrubbed_from_dumps(self):
        # Regression: the deprecated (no-effect) knob used to survive into
        # spec dumps and digests.  It is still *accepted* as input -- old
        # spec files keep loading and keep triggering the deprecation path
        # -- but serialized output and the digest are clean.
        def spec_with(options):
            return ExperimentSpec.of(
                scenario=Scenario.default("scrub", trace=TraceSpec(days=10)),
                experiments=("goodput",),
                options=options,
            )

        with pytest.warns(DeprecationWarning, match="sample_interval_hours"):
            noisy = spec_with(
                {"goodput": {"job_gpus": 64, "sample_interval_hours": 6.0}}
            )
        clean = spec_with({"goodput": {"job_gpus": 64}})
        assert noisy.options_for("goodput")["sample_interval_hours"] == 6.0
        # Loading an old spec file (dict form) warns too.
        with pytest.warns(DeprecationWarning, match="sample_interval_hours"):
            reloaded = ExperimentSpec.from_dict(
                {
                    "scenario": noisy.scenario.to_dict(),
                    "experiments": ["goodput"],
                    "options": {"goodput": {"sample_interval_hours": 6.0}},
                }
            )
        assert "sample_interval_hours" not in reloaded.to_json()
        assert "sample_interval_hours" not in noisy.to_dict()["options"]["goodput"]
        assert "sample_interval_hours" not in noisy.to_json()
        assert noisy.to_dict() == clean.to_dict()
        assert noisy.digest() == clean.digest()


class TestRegistry:
    def test_default_lineup_registered(self):
        names = list_architectures()
        for name in DEFAULT_LINEUP:
            assert name in names

    def test_create_by_alias_and_case(self):
        assert REGISTRY.create("NVL72").name == "NVL-72"
        assert REGISTRY.create("bigswitch").name == "Big-Switch"

    def test_register_and_create_custom(self):
        registry = ArchitectureRegistry()

        @registry.register("dual-rail", defaults={"hbd_size": 144})
        def _dual_rail(gpus_per_node=4, hbd_size=144):
            return NVLHBD(hbd_size, gpus_per_node=gpus_per_node)

        arch = registry.create("dual-rail")
        assert arch.name == "NVL-144"
        assert registry.create("dual-rail", hbd_size=288).name == "NVL-288"
        assert "dual-rail" in registry

    def test_duplicate_registration_requires_override(self):
        registry = ArchitectureRegistry()
        registry.register_factory("x", lambda gpus_per_node=4: NVLHBD(72))
        with pytest.raises(ValueError, match="override"):
            registry.register_factory("x", lambda gpus_per_node=4: NVLHBD(36))
        registry.register_factory(
            "x", lambda gpus_per_node=4: NVLHBD(36, gpus_per_node=gpus_per_node),
            override=True,
        )
        assert registry.create("x").name == "NVL-36"

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(KeyError, match="did you mean"):
            REGISTRY.create("nvl-721")

    def test_architecture_by_name_shim_suggests(self):
        with pytest.raises(KeyError, match="did you mean"):
            architecture_by_name("infinitehdb")

    def test_unregister(self):
        registry = ArchitectureRegistry()
        registry.register_factory(
            "temp", lambda gpus_per_node=4: NVLHBD(72), aliases=("tmp",)
        )
        registry.unregister("tmp")
        assert "temp" not in registry
        assert "tmp" not in registry


class TestRunner:
    def test_waste_sweep_covers_grid(self):
        results = run_experiment(small_spec(), max_workers=1)
        assert len(results) == 4  # 2 architectures x 2 TP sizes
        assert results.architectures() == ["InfiniteHBD(K=3)", "NVL-72"]
        for r in results:
            assert r.experiment == "waste"
            assert 0.0 <= r.metric("mean_waste_ratio") <= 1.0
            assert r.provenance is not None
            assert r.provenance.seed == 348

    def test_same_seed_identical_results(self):
        spec = small_spec(experiments=("waste", "goodput", "max_job_scale"))
        first = ExperimentRunner(spec, max_workers=1).run()
        second = ExperimentRunner(spec, max_workers=1).run()
        assert first == second

    def test_parallel_matches_serial(self):
        spec = small_spec(experiments=("waste", "fault_waiting"))
        serial = ExperimentRunner(spec, max_workers=1).run()
        parallel = ExperimentRunner(spec, max_workers=2).run()
        assert serial == parallel

    def test_custom_registered_architecture_runs_by_name(self):
        name = "test-dual-rail"
        REGISTRY.register_factory(
            name,
            lambda gpus_per_node=4, hbd_size=144: NVLHBD(
                hbd_size, gpus_per_node=gpus_per_node
            ),
            defaults={"hbd_size": 144},
            override=True,
        )
        try:
            spec = small_spec(architectures=(ArchitectureSpec(name=name),))
            results = run_experiment(spec, max_workers=1)
            assert results.architectures() == ["NVL-144"]
        finally:
            REGISTRY.unregister(name)

    def test_goodput_metrics(self):
        results = run_experiment(small_spec(experiments=("goodput",)), max_workers=1)
        for r in results:
            assert 0.0 <= r.metric("goodput") <= 1.0
            assert r.metric("job_gpus") == 1024

    def test_fault_waiting_series(self):
        spec = ExperimentSpec.of(
            scenario=small_spec().scenario,
            experiments=("fault_waiting",),
            options={"fault_waiting": {"job_scales": [512, 1024]}},
        )
        results = run_experiment(spec, max_workers=1)
        for r in results:
            series = r.series_dict
            assert list(series["job_scales"]) == [512, 1024]
            assert len(series["waiting_rates"]) == 2

    def test_missing_architectures_rejected(self):
        spec = ExperimentSpec.of(
            scenario=Scenario(name="empty", trace=TraceSpec(days=10)),
            experiments=("waste",),
        )
        with pytest.raises(ValueError, match="architectures"):
            ExperimentRunner(spec, max_workers=1).run()


class TestScheduleExperiment:
    def schedule_spec(self, **scheduler_overrides):
        return small_spec(
            experiments=("schedule",),
            tp_sizes=(32,),
            workload=WorkloadSpec(
                n_jobs=25, seed=5, mean_interarrival_hours=2.0, median_work_hours=4.0
            ),
            scheduler=SchedulerSpec(**scheduler_overrides),
        )

    def test_workload_spec_round_trip(self):
        spec = WorkloadSpec(n_jobs=10, seed=3, median_work_hours=12.0)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_explicit_workload_round_trip(self):
        spec = WorkloadSpec(
            kind="explicit",
            jobs=(JobSpec(name="a", gpus=64, tp_size=32, work_hours=5.0),),
        )
        restored = WorkloadSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.build(tp_size=32, max_gpus=1024) == spec.jobs

    def test_workload_spec_validation(self):
        with pytest.raises(ValueError, match="explicit"):
            WorkloadSpec(kind="explicit")
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec(kind="poisson")

    def test_scheduler_spec_validation(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            SchedulerSpec(policy="lifo")
        with pytest.raises(ValueError, match="horizon"):
            SchedulerSpec(horizon_hours=0.0)

    def test_scenario_with_scheduler_round_trips(self):
        spec = self.schedule_spec(policy="smallest-first", preemptive=True)
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.scenario.workload.n_jobs == 25
        assert restored.scenario.scheduler.preemptive

    def test_scenario_without_scheduler_keeps_legacy_dict_shape(self):
        # Pre-scheduler spec files (and their digests) must be unaffected.
        data = small_spec().scenario.to_dict()
        assert "workload" not in data
        assert "scheduler" not in data

    def test_schedule_run_produces_cluster_metrics(self):
        results = run_experiment(self.schedule_spec(), max_workers=1)
        assert len(results) == 2  # 2 architectures x 1 TP size
        for r in results:
            assert r.experiment == "schedule"
            assert r.metric("n_jobs") == 25
            assert r.metric("finished_jobs") == 25
            assert r.metric("makespan_hours") > 0
            assert 0.0 <= r.metric("cluster_goodput") <= 1.0
            assert len(r.series_dict["jct_hours"]) == 25

    def test_schedule_parallel_matches_serial(self):
        spec = self.schedule_spec(policy="shortest-remaining", preemptive=True)
        serial = ExperimentRunner(spec, max_workers=1).run()
        parallel = ExperimentRunner(spec, max_workers=2).run()
        assert serial == parallel

    def test_schedule_without_workload_rejected(self):
        spec = small_spec(experiments=("schedule",))
        with pytest.raises(ValueError, match="workload"):
            ExperimentRunner(spec, max_workers=1).run()


class TestResultSerialization:
    def test_result_round_trip(self):
        results = run_experiment(small_spec(), max_workers=1)
        for r in results:
            assert ExperimentResult.from_dict(r.to_dict()) == r

    def test_result_set_json_round_trip(self):
        results = run_experiment(small_spec(experiments=("waste", "goodput")),
                                 max_workers=1)
        assert ResultSet.from_json(results.to_json()) == results

    def test_metric_table(self):
        results = run_experiment(small_spec(), max_workers=1)
        table = results.metric_table("waste", "mean_waste_ratio")
        assert set(table) == {"InfiniteHBD(K=3)", "NVL-72"}
        assert set(table["NVL-72"]) == {16, 32}

    def test_unknown_metric_raises(self):
        results = run_experiment(small_spec(), max_workers=1)
        with pytest.raises(KeyError, match="available"):
            results[0].metric("nonexistent")


class TestCLIRun:
    def test_run_spec_end_to_end(self, capsys, tmp_path):
        from repro.cli import main

        spec = ExperimentSpec.of(
            scenario=Scenario(
                name="cli-smoke",
                trace=TraceSpec(days=15, seed=348),
                architectures=default_architecture_specs()[:3],
                tp_sizes=(32,),
                n_nodes=288,
                job_gpus=512,
            ),
            experiments=("waste", "goodput"),
        )
        spec_path = tmp_path / "spec.json"
        out_path = tmp_path / "results.json"
        spec_path.write_text(spec.to_json())

        assert main(["run", "--spec", str(spec_path),
                     "--output", str(out_path), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "scenario=cli-smoke" in out
        assert "InfiniteHBD(K=2)" in out

        restored = ResultSet.from_json(out_path.read_text())
        assert len(restored) == 6  # (waste + goodput) x 3 architectures
        assert restored == run_experiment(spec, max_workers=1)

    def test_architectures_subcommand(self, capsys):
        from repro.cli import main

        assert main(["architectures"]) == 0
        out = capsys.readouterr().out
        assert "InfiniteHBD(K=2)" in out
        assert "infinitehbd" in out
