"""Tests for the event-driven fault timeline engine and exact interval metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import empirical_cdf, weighted_quantile
from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.timeline import FaultInterval, IntervalTimeline, sweep_intervals
from repro.faults.trace import FaultEvent, FaultTrace, HOURS_PER_DAY
from repro.hbd import BigSwitchHBD, InfiniteHBDArchitecture, NVLHBD
from repro.simulation.cluster import (
    ClusterSimulator,
    FaultTimeline,
    IntervalSeries,
    replay_intervals,
    replay_timeline,
)


# --------------------------------------------------------------------------
# strategies: small random traces, with events allowed to spill past the
# trace window (the sweep must clip) and to overlap on the same node
# --------------------------------------------------------------------------
N_NODES = 12
DURATION_DAYS = 4
DURATION_HOURS = DURATION_DAYS * HOURS_PER_DAY

event_strategy = st.tuples(
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.floats(min_value=-10.0, max_value=DURATION_HOURS + 10.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False),
)


def build_trace(raw_events):
    events = [
        FaultEvent(node_id=node, start_hour=max(0.0, start), end_hour=max(0.0, start) + length)
        for node, start, length in raw_events
    ]
    return FaultTrace(
        n_nodes=N_NODES, duration_days=DURATION_DAYS, events=events, gpus_per_node=4
    )


def naive_fault_set(trace, hour):
    """The seed's O(n_events) per-instant scan, kept as the oracle."""
    return frozenset(e.node_id for e in trace.events if e.active_at(hour))


class TestSweepIntervals:
    def test_empty_trace_is_one_empty_interval(self):
        intervals = sweep_intervals([], 48.0)
        assert intervals == (FaultInterval(0.0, 48.0, frozenset()),)

    def test_single_event(self):
        events = [FaultEvent(node_id=2, start_hour=10.0, end_hour=20.0)]
        intervals = sweep_intervals(events, 48.0)
        assert intervals == (
            FaultInterval(0.0, 10.0, frozenset()),
            FaultInterval(10.0, 20.0, frozenset({2})),
            FaultInterval(20.0, 48.0, frozenset()),
        )

    def test_event_clipped_to_window(self):
        events = [FaultEvent(node_id=0, start_hour=0.0, end_hour=1000.0)]
        intervals = sweep_intervals(events, 24.0)
        assert intervals == (FaultInterval(0.0, 24.0, frozenset({0})),)

    def test_overlapping_events_on_same_node(self):
        # Node 1 is down in [0, 30) via two overlapping events; the set only
        # changes when the *last* open event closes.
        events = [
            FaultEvent(node_id=1, start_hour=0.0, end_hour=20.0),
            FaultEvent(node_id=1, start_hour=10.0, end_hour=30.0),
        ]
        intervals = sweep_intervals(events, 48.0)
        assert intervals == (
            FaultInterval(0.0, 30.0, frozenset({1})),
            FaultInterval(30.0, 48.0, frozenset()),
        )

    def test_adjacent_identical_sets_merged(self):
        # One event ends exactly when another starts on the same node: the
        # fault set never changes, so there is a single merged interval.
        events = [
            FaultEvent(node_id=3, start_hour=5.0, end_hour=10.0),
            FaultEvent(node_id=3, start_hour=10.0, end_hour=15.0),
        ]
        intervals = sweep_intervals(events, 20.0)
        assert intervals == (
            FaultInterval(0.0, 5.0, frozenset()),
            FaultInterval(5.0, 15.0, frozenset({3})),
            FaultInterval(15.0, 20.0, frozenset()),
        )

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            sweep_intervals([], 0.0)

    @given(st.lists(event_strategy, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_intervals_partition_the_window(self, raw_events):
        trace = build_trace(raw_events)
        intervals = sweep_intervals(trace.events, trace.duration_hours)
        assert intervals[0].start_hour == 0.0
        assert intervals[-1].end_hour == trace.duration_hours
        for left, right in zip(intervals, intervals[1:]):
            assert left.end_hour == right.start_hour
            assert left.nodes != right.nodes  # maximal: neighbours differ
        assert all(iv.duration_hours > 0 for iv in intervals)

    @given(st.lists(event_strategy, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_interval_sets_match_naive_scans(self, raw_events):
        trace = build_trace(raw_events)
        timeline = IntervalTimeline.from_trace(trace)
        for interval in timeline.intervals:
            # Probe at the interval start and strictly inside it.
            assert timeline.fault_set_at(interval.start_hour) == interval.nodes
            assert naive_fault_set(trace, interval.start_hour) == interval.nodes
            mid = interval.start_hour + interval.duration_hours / 2
            assert naive_fault_set(trace, mid) == interval.nodes


class TestGridCompatibility:
    """Grid mode = "resample the exact intervals": bit-for-bit with the seed."""

    @given(st.lists(event_strategy, max_size=25),
           st.sampled_from([24.0, 7.0, 1.0, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_resampled_grid_matches_naive_scans(self, raw_events, interval_hours):
        trace = build_trace(raw_events)
        grid = FaultTimeline.from_trace(trace, sample_interval_hours=interval_hours)
        expected = tuple(naive_fault_set(trace, t) for t in grid.times_hours)
        assert grid.fault_sets == expected

    @given(st.lists(event_strategy, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_grid_replay_reproduces_seed_series_bit_for_bit(self, raw_events):
        trace = build_trace(raw_events)
        arch = BigSwitchHBD(gpus_per_node=4)
        grid = FaultTimeline.from_trace(trace, sample_interval_hours=24.0)
        series = replay_timeline(arch, grid, 4)
        # The seed loop: one per-sample scan + one breakdown per sample.
        for t, waste, usable in zip(
            grid.times_hours, series.waste_ratios, series.usable_gpus
        ):
            breakdown = arch.breakdown(N_NODES, naive_fault_set(trace, t), 4)
            assert waste == breakdown.waste_ratio
            assert usable == breakdown.usable_gpus

    @given(st.lists(event_strategy, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_grid_means_converge_to_exact_mean(self, raw_events):
        trace = build_trace(raw_events)
        exact = trace.interval_timeline().mean_fault_ratio()
        n_boundaries = 2 * len(trace.events)
        for h in (24.0, 4.0, 0.5):
            _, ratios = trace.fault_ratio_series(h)
            grid_mean = sum(ratios) / len(ratios)
            # Each grid cell containing an event boundary (plus the ragged
            # final cell) mis-weights the ratio by at most h hours.
            bound = (n_boundaries + 3) * h / trace.duration_hours
            assert abs(grid_mean - exact) <= bound + 1e-9

    def test_day_granular_trace_daily_grid_is_already_exact(self):
        # The synthetic generator emits day-granular events, so the daily
        # grid and the exact interval timeline agree exactly.
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=60, duration_days=45, seed=7)
        )
        exact = trace.statistics()
        sampled = trace.statistics(interval_hours=24.0)
        assert exact.mean_fault_ratio == pytest.approx(sampled.mean_fault_ratio, abs=1e-12)
        assert exact.max_fault_ratio == pytest.approx(sampled.max_fault_ratio, abs=1e-12)


class TestIntervalTimeline:
    def test_from_trace_restricts_nodes(self):
        events = [
            FaultEvent(node_id=0, start_hour=0.0, end_hour=10.0),
            FaultEvent(node_id=9, start_hour=0.0, end_hour=10.0),
        ]
        trace = FaultTrace(n_nodes=10, duration_days=2, events=events, gpus_per_node=4)
        timeline = IntervalTimeline.from_trace(trace, n_nodes=5)
        assert timeline.n_nodes == 5
        assert timeline.fault_set_at(5.0) == frozenset({0})
        with pytest.raises(ValueError):
            IntervalTimeline.from_trace(trace, n_nodes=11)

    def test_fault_set_outside_window_is_empty(self):
        trace = build_trace([(0, 0.0, 10.0)])
        timeline = trace.interval_timeline()
        assert timeline.fault_set_at(-1.0) == frozenset()
        assert timeline.fault_set_at(trace.duration_hours) == frozenset()

    def test_resample_handles_unsorted_times(self):
        trace = build_trace([(0, 0.0, 10.0)])
        timeline = trace.interval_timeline()
        sets = timeline.resample([50.0, 5.0])
        assert sets == [frozenset(), frozenset({0})]

    def test_statistics_weighting(self):
        # Node 0 down for 24 of 96 hours: exact mean ratio = 0.25 * 1/12.
        trace = build_trace([(0, 0.0, 24.0)])
        timeline = trace.interval_timeline()
        assert timeline.mean_fault_ratio() == pytest.approx(0.25 / N_NODES)
        assert timeline.max_fault_ratio() == pytest.approx(1 / N_NODES)
        assert timeline.fault_ratio_quantile(0.0) == 0.0
        assert timeline.fault_ratio_quantile(1.0) == pytest.approx(1 / N_NODES)


class TestWeightedQuantile:
    def test_matches_time_shares(self):
        values = [0.0, 0.1, 0.2]
        weights = [50.0, 30.0, 20.0]
        assert weighted_quantile(values, weights, 0.25) == 0.0
        assert weighted_quantile(values, weights, 0.6) == 0.1
        assert weighted_quantile(values, weights, 0.9) == 0.2
        assert weighted_quantile(values, weights, 1.0) == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_quantile([1.0], [1.0], 1.5)
        with pytest.raises(ValueError):
            weighted_quantile([1.0, 2.0], [1.0], 0.5)
        assert weighted_quantile([], [], 0.5) == 0.0


class TestEmpiricalCdf:
    def test_equal_weight_matches_hand_rolled(self):
        values = [0.3, 0.1, 0.2]
        sorted_values, cdf = empirical_cdf(values)
        assert sorted_values == [0.1, 0.2, 0.3]
        assert cdf == [1 / 3, 2 / 3, 1.0]

    def test_empty(self):
        assert empirical_cdf([]) == ([], [])

    def test_weighted(self):
        values, cdf = empirical_cdf([0.2, 0.0], [25.0, 75.0])
        assert values == [0.0, 0.2]
        assert cdf == [0.75, 1.0]

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            empirical_cdf([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            empirical_cdf([1.0], [-1.0])
        with pytest.raises(ValueError):
            empirical_cdf([1.0], [0.0])


class TestIntervalSeries:
    @pytest.fixture()
    def series(self):
        # Hand-checkable replay: 10 nodes, Big-Switch, TP-4; node 0 down for
        # the middle 24 of 96 hours.
        events = [FaultEvent(node_id=0, start_hour=36.0, end_hour=60.0)]
        trace = FaultTrace(n_nodes=10, duration_days=4, events=events, gpus_per_node=4)
        return replay_intervals(BigSwitchHBD(4), trace.interval_timeline(), 4)

    def test_exact_durations(self, series):
        assert len(series) == 3
        assert series.durations_hours == [36.0, 24.0, 36.0]
        assert series.total_hours == 96.0

    def test_duration_weighted_mean(self, series):
        # Big-Switch wastes nothing at TP-4 (all healthy GPUs usable).
        assert series.mean_waste_ratio == 0.0
        assert series.min_usable_gpus == 36

    def test_fault_waiting_rate_is_time_fraction(self, series):
        assert series.fault_waiting_rate(40) == pytest.approx(24.0 / 96.0)
        assert series.fault_waiting_rate(36) == 0.0

    def test_supported_job_scale(self, series):
        assert series.supported_job_scale(1.0) == 36
        # Allowing 25% waiting admits the full 40-GPU job.
        assert series.supported_job_scale(0.75) == 40
        # 20% waiting budget is not enough for the 24/96 = 25% dip.
        assert series.supported_job_scale(0.80) == 36
        with pytest.raises(ValueError):
            series.supported_job_scale(0.0)

    def test_mean_waste_in_window(self):
        events = [FaultEvent(node_id=0, start_hour=0.0, end_hour=48.0)]
        trace = FaultTrace(n_nodes=4, duration_days=4, events=events, gpus_per_node=4)
        series = replay_intervals(NVLHBD(8, gpus_per_node=4), trace.interval_timeline(), 8)
        first_half = series.mean_waste_in_window(0.0, 2.0)
        second_half = series.mean_waste_in_window(2.0, 4.0)
        # Node 0's domain partner wastes 4 GPUs of 16 while node 0 is down.
        assert first_half == pytest.approx(0.25)
        assert second_half == 0.0

    def test_empty_series(self):
        series = IntervalSeries([], [], [], [], [], total_gpus=0)
        assert series.mean_waste_ratio == 0.0
        assert series.fault_waiting_rate(1) == 0.0
        assert series.supported_job_scale() == 0
        assert series.waste_ratio_cdf() == ([], [])


class TestExactVsGridReplay:
    """Exact aggregates agree with fine grids and beat coarse ones."""

    @pytest.fixture(scope="class")
    def trace(self):
        source = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=100, duration_days=60, seed=5)
        )
        return convert_trace_8gpu_to_4gpu(source, seed=5)

    def test_exact_equals_daily_grid_on_day_granular_trace(self, trace):
        arch = InfiniteHBDArchitecture(k=2, gpus_per_node=4)
        sim = ClusterSimulator(arch, trace, n_nodes=trace.n_nodes)
        grid = sim.run(32)
        exact = sim.run_exact(32)
        assert exact.mean_waste_ratio == pytest.approx(grid.mean_waste_ratio, abs=1e-12)
        assert exact.min_usable_gpus == grid.min_usable_gpus
        assert exact.supported_job_scale(1.0) == grid.supported_job_scale(1.0)

    def test_exact_catches_sub_grid_dips(self):
        # A 1-hour blip is invisible to the daily grid (it falls between
        # samples) but exact replay accounts for it.
        events = [FaultEvent(node_id=0, start_hour=30.0, end_hour=31.0)]
        trace = FaultTrace(n_nodes=10, duration_days=4, events=events, gpus_per_node=4)
        arch = BigSwitchHBD(4)
        sim = ClusterSimulator(arch, trace)
        grid = sim.run(4)
        exact = sim.run_exact(4)
        assert grid.min_usable_gpus == 40          # the grid never saw it
        assert exact.min_usable_gpus == 36         # the exact replay did
        assert exact.fault_waiting_rate(40) == pytest.approx(1.0 / 96.0)
        assert grid.fault_waiting_rate(40) == 0.0
