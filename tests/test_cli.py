"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in (
            "trace", "waste", "orchestrate", "mfu", "cost", "goodput", "schedule",
        ):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.func)


class TestCommands:
    def test_cost_command(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "InfiniteHBD(K=2)" in out
        assert "NVL-72" in out

    def test_cost_command_with_hpn(self, capsys):
        main(["cost", "--include-hpn"])
        assert "Alibaba-HPN" in capsys.readouterr().out

    def test_mfu_command(self, capsys):
        assert main(["mfu", "--model", "llama", "--gpus", "1024"]) == 0
        out = capsys.readouterr().out
        assert "best: TP=" in out
        assert "mfu=" in out

    def test_mfu_command_with_tp_cap(self, capsys):
        main(["mfu", "--model", "llama", "--gpus", "4096", "--max-tp", "8"])
        out = capsys.readouterr().out
        assert "TP=8" in out or "TP=4" in out or "TP=2" in out

    def test_trace_command(self, capsys, tmp_path):
        output = tmp_path / "trace.csv"
        assert main(["trace", "--days", "30", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "mean_ratio=" in out
        assert output.exists()
        assert output.read_text().startswith("node_id,start_hour,end_hour")

    def test_trace_command_4gpu_conversion(self, capsys):
        main(["trace", "--days", "20", "--gpus-per-node", "4"])
        assert "gpus_per_node=4" in capsys.readouterr().out

    def test_orchestrate_command(self, capsys):
        assert main([
            "orchestrate", "--gpus", "1024", "--fault-ratio", "0.02",
            "--tors-per-domain", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "optimized" in out

    def test_waste_command_small(self, capsys):
        assert main(["waste", "--days", "20", "--nodes", "288"]) == 0
        out = capsys.readouterr().out
        assert "InfiniteHBD(K=3)" in out
        assert "SiP-Ring" in out

    def test_goodput_command_small(self, capsys):
        assert main([
            "goodput", "--days", "20", "--nodes", "288", "--job-gpus", "1024",
        ]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "InfiniteHBD(K=2)" in out

    def test_schedule_command_small(self, capsys):
        assert main([
            "schedule", "--days", "20", "--nodes", "288", "--jobs", "30",
            "--policy", "smallest-first", "--preemptive", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy=smallest-first preemptive=True" in out
        assert "InfiniteHBD(K=3)" in out
        assert "NVL-72" in out
