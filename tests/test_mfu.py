"""Tests for the MFU simulator and the parallelism strategy search."""

import pytest

from repro.training.mfu import HardwareSpec, MFUSimulator, ParallelismConfig
from repro.training.models import gpt_moe_1t, llama31_405b
from repro.training.parallelism import (
    enumerate_configs,
    optimal_mfu_table,
    search_optimal_strategy,
    tp_vs_ep_imbalance_table,
)


class TestParallelismConfig:
    def test_world_size(self):
        config = ParallelismConfig(tp=8, pp=4, dp=16)
        assert config.world_size == 512

    def test_bubble_fraction(self):
        config = ParallelismConfig(tp=8, pp=4, dp=16, global_batch=2048)
        # 128 microbatches per replica -> bubble 3/131
        assert config.pipeline_bubble_fraction == pytest.approx(3 / 131)

    def test_bubble_grows_when_dp_eats_the_batch(self):
        small_dp = ParallelismConfig(tp=8, pp=16, dp=16, global_batch=2048)
        large_dp = ParallelismConfig(tp=8, pp=16, dp=1024, global_batch=2048)
        assert large_dp.pipeline_bubble_fraction > small_dp.pipeline_bubble_fraction

    def test_straggler_factor(self):
        assert ParallelismConfig(8, 1, 8, expert_imbalance_coef=0.0).straggler_factor == 1.0
        assert ParallelismConfig(8, 1, 8, expert_imbalance_coef=0.2).straggler_factor == pytest.approx(2 / 1.8)

    def test_virtual_pipeline_shrinks_bubble(self):
        plain = ParallelismConfig(tp=8, pp=16, dp=128, global_batch=2048)
        interleaved = ParallelismConfig(tp=8, pp=16, dp=128, global_batch=2048,
                                        virtual_pipeline=3)
        assert interleaved.pipeline_bubble_fraction < plain.pipeline_bubble_fraction
        # (pp-1)/(v*m + pp - 1) with m = 16 microbatches and v = 3
        assert interleaved.pipeline_bubble_fraction == pytest.approx(15 / (48 + 15))

    def test_virtual_pipeline_improves_mfu_when_bubble_bound(self):
        from repro.training.models import llama31_405b
        from repro.training.mfu import MFUSimulator
        sim = MFUSimulator()
        model = llama31_405b()
        plain = ParallelismConfig(tp=8, pp=16, dp=256, global_batch=2048)
        interleaved = ParallelismConfig(tp=8, pp=16, dp=256, global_batch=2048,
                                        virtual_pipeline=4)
        assert sim.estimate(model, interleaved).mfu > sim.estimate(model, plain).mfu

    def test_virtual_pipeline_validation(self):
        with pytest.raises(ValueError):
            ParallelismConfig(tp=1, pp=1, dp=1, virtual_pipeline=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelismConfig(tp=0, pp=1, dp=1)
        with pytest.raises(ValueError):
            ParallelismConfig(tp=1, pp=1, dp=2, ep=4)
        with pytest.raises(ValueError):
            ParallelismConfig(tp=1, pp=1, dp=1, expert_imbalance_coef=1.0)


class TestHardwareSpec:
    def test_defaults_match_section61(self):
        hw = HardwareSpec()
        assert hw.peak_flops == pytest.approx(989e12)
        assert hw.hbd_bandwidth_gbps == 6400.0
        assert hw.dcn_bandwidth_gbps == 400.0

    def test_gemm_efficiency_decays_with_tp(self):
        hw = HardwareSpec()
        assert hw.gemm_efficiency(8) == pytest.approx(hw.gemm_base_efficiency)
        assert hw.gemm_efficiency(64) < hw.gemm_efficiency(16) < hw.gemm_efficiency(8)
        assert hw.gemm_efficiency(1024) >= 0.05

    def test_gemm_efficiency_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec().gemm_efficiency(0)


class TestMFUSimulator:
    def setup_method(self):
        self.sim = MFUSimulator()
        self.model = llama31_405b()

    def test_reasonable_mfu_at_1k_gpus(self):
        config = ParallelismConfig(tp=16, pp=4, dp=16, global_batch=2048)
        estimate = self.sim.estimate(self.model, config)
        assert estimate.feasible
        assert 0.35 <= estimate.mfu <= 0.65

    def test_mfu_definition_consistency(self):
        config = ParallelismConfig(tp=16, pp=4, dp=16, global_batch=2048)
        e = self.sim.estimate(self.model, config)
        assert e.mfu <= e.gemm_efficiency + 1e-9
        assert e.iteration_time_s > e.compute_time_s

    def test_memory_infeasible_config_detected(self):
        config = ParallelismConfig(tp=1, pp=1, dp=1024, global_batch=2048)
        estimate = self.sim.estimate(self.model, config)
        assert not estimate.feasible
        assert estimate.mfu == 0.0
        assert "memory" in estimate.infeasible_reason

    def test_tp_beyond_heads_infeasible(self):
        config = ParallelismConfig(tp=256, pp=1, dp=4, global_batch=2048)
        estimate = self.sim.estimate(self.model, config)
        assert not estimate.feasible

    def test_pp_beyond_layers_infeasible(self):
        small = llama31_405b()
        config = ParallelismConfig(tp=8, pp=16, dp=16, global_batch=2048)
        assert self.sim.estimate(small, config).feasible
        tiny = gpt_moe_1t()
        config_bad = ParallelismConfig(tp=8, pp=16, dp=16, global_batch=1536,
                                       ep=16)
        # ep=16 > dp? no; ep must be <= dp -> pick dp=16; experts are 8 so infeasible
        estimate = self.sim.estimate(tiny, config_bad)
        assert not estimate.feasible

    def test_batch_not_divisible_by_dp_infeasible(self):
        config = ParallelismConfig(tp=8, pp=4, dp=3, global_batch=2048)
        assert not self.sim.estimate(self.model, config).feasible

    def test_bubble_hurts_mfu(self):
        hw = HardwareSpec()
        sim = MFUSimulator(hw)
        low_bubble = ParallelismConfig(tp=8, pp=4, dp=32, global_batch=2048)
        high_bubble = ParallelismConfig(tp=8, pp=16, dp=1024, global_batch=2048)
        assert sim.estimate(self.model, low_bubble).mfu > sim.estimate(self.model, high_bubble).mfu

    def test_imbalance_slows_moe_with_ep(self):
        moe = gpt_moe_1t()
        balanced = ParallelismConfig(tp=8, pp=8, dp=16, ep=8, global_batch=1536,
                                     expert_imbalance_coef=0.0)
        imbalanced = ParallelismConfig(tp=8, pp=8, dp=16, ep=8, global_batch=1536,
                                       expert_imbalance_coef=0.3)
        assert self.sim.estimate(moe, imbalanced).mfu < self.sim.estimate(moe, balanced).mfu

    def test_imbalance_ignored_without_ep(self):
        moe = gpt_moe_1t()
        a = ParallelismConfig(tp=16, pp=8, dp=8, ep=1, global_batch=1536,
                              expert_imbalance_coef=0.0)
        b = ParallelismConfig(tp=16, pp=8, dp=8, ep=1, global_batch=1536,
                              expert_imbalance_coef=0.3)
        assert self.sim.estimate(moe, a).mfu == pytest.approx(self.sim.estimate(moe, b).mfu)

    def test_memory_accounting_positive(self):
        config = ParallelismConfig(tp=16, pp=4, dp=16, global_batch=2048)
        mem = self.sim.memory_per_gpu(self.model, config)
        assert 0 < mem < 80 * 1024 ** 3


class TestStrategySearch:
    def test_enumerate_configs_tiles_world_size(self):
        configs = enumerate_configs(1024, 2048)
        assert configs
        assert all(c.world_size == 1024 for c in configs)

    def test_enumerate_respects_dp_cap(self):
        configs = enumerate_configs(131072, 2048)
        assert all(c.dp <= 1024 for c in configs)

    def test_search_finds_feasible_optimum(self):
        result = search_optimal_strategy(llama31_405b(), 1024, 2048)
        assert result.best_config is not None
        assert result.best_estimate.feasible
        assert result.mfu > 0.3

    def test_tp_cap_limits_search(self):
        result = search_optimal_strategy(llama31_405b(), 8192, 2048, max_tp=8)
        assert result.best_config.tp <= 8

    def test_optimal_tp_grows_with_cluster_size(self):
        """The paper's headline observation (Table 2)."""
        small = search_optimal_strategy(llama31_405b(), 1024, 2048)
        large = search_optimal_strategy(llama31_405b(), 65536, 2048)
        assert large.best_config.tp > small.best_config.tp
        assert large.best_config.tp >= 32

    def test_unconstrained_tp_beats_tp8_at_scale(self):
        rows = optimal_mfu_table(llama31_405b(), [32768], 2048)
        assert rows[0]["improvement"] > 1.5

    def test_improvement_ratio_grows_with_scale(self):
        rows = optimal_mfu_table(llama31_405b(), [1024, 16384, 131072], 2048)
        improvements = [row["improvement"] for row in rows]
        assert improvements == sorted(improvements)
        assert improvements[-1] > 2.5

    def test_mfu_declines_with_scale(self):
        rows = optimal_mfu_table(llama31_405b(), [1024, 8192, 65536], 2048,
                                 baseline_max_tp=None)
        mfus = [row["mfu"] for row in rows]
        assert mfus == sorted(mfus, reverse=True)

    def test_moe_table_prefers_tp_over_ep_under_imbalance(self):
        """Table 5: with a 20% imbalance coefficient TP-heavy configs win for
        most cluster sizes (EP provides little benefit)."""
        rows = optimal_mfu_table(
            gpt_moe_1t(), [1024, 2048, 4096], global_batch=1536,
            ep_choices=(1, 2, 4, 8), expert_imbalance_coef=0.2,
            baseline_max_tp=None,
        )
        assert sum(1 for row in rows if row["ep"] == 1) >= 2

    def test_table4_ep_degrades_with_imbalance(self):
        table = tp_vs_ep_imbalance_table(world_size=1024, global_batch=1536)
        ep_values = [table["ep"][c] for c in sorted(table["ep"])]
        assert ep_values == sorted(ep_values, reverse=True)
        tp_values = set(round(v, 6) for v in table["tp"].values())
        assert len(tp_values) == 1

    def test_table4_crossover(self):
        """EP is competitive when balanced but loses under 20-30% imbalance."""
        table = tp_vs_ep_imbalance_table(world_size=1024, global_batch=1536)
        assert table["ep"][0.0] >= table["tp"][0.0] * 0.98
        assert table["ep"][0.3] < table["tp"][0.3]
