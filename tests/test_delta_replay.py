"""Tests for incremental (delta) breakdown replay and streaming aggregation.

The correctness contract of the delta path is *bit-for-bit* equality: a
sweep-line walk advancing one :meth:`~repro.hbd.base.HBDArchitecture.
breakdown_delta` state per interval must produce exactly the series the
memoized full-recompute replay produces, which in turn matches the seed's
grid scans (pinned in test_fault_timeline.py).  Streaming aggregation is
held to the same standard where float summation order allows (integer-time
traces) and to tight tolerances otherwise.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import StreamingDistribution, empirical_cdf, weighted_quantile
from repro.faults.timeline import FaultInterval, IntervalStream, IntervalTimeline
from repro.faults.trace import FaultEvent, FaultTrace, HOURS_PER_DAY
from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
)
from repro.simulation.cluster import (
    IntervalSeries,
    StreamingIntervalSeries,
    replay_intervals,
    replay_timeline,
    FaultTimeline,
)

N_NODES = 24
DURATION_DAYS = 4
DURATION_HOURS = DURATION_DAYS * HOURS_PER_DAY

#: The delta-capable line-up plus the fallback architecture, all at R=4.
ARCHITECTURES = [
    SiPRingHBD(gpus_per_node=4),
    TPUv4HBD(gpus_per_node=4, cube_size=16),
    NVLHBD(36, gpus_per_node=4),
    NVLHBD(8, gpus_per_node=4),
    BigSwitchHBD(gpus_per_node=4),
    InfiniteHBDArchitecture(k=2, gpus_per_node=4),
]

float_event = st.tuples(
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.floats(min_value=-10.0, max_value=DURATION_HOURS + 10.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False),
)

int_event = st.tuples(
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=int(DURATION_HOURS) - 1),
    st.integers(min_value=1, max_value=40),
)


def build_trace(raw_events):
    events = [
        FaultEvent(
            node_id=node,
            start_hour=max(0.0, float(start)),
            end_hour=max(0.0, float(start)) + float(length),
        )
        for node, start, length in raw_events
    ]
    return FaultTrace(
        n_nodes=N_NODES, duration_days=DURATION_DAYS, events=events, gpus_per_node=4
    )


# --------------------------------------------------------------------------
# breakdown_delta against the ground-truth full breakdown
# --------------------------------------------------------------------------
class TestBreakdownDelta:
    @pytest.mark.parametrize("arch", ARCHITECTURES, ids=lambda a: a.name)
    @pytest.mark.parametrize("tp_size", [4, 8, 16, 32])
    def test_random_flip_walk_matches_full_breakdown(self, arch, tp_size):
        import random

        rng = random.Random(hash((arch.name, tp_size)) & 0xFFFF)
        faults = set(rng.sample(range(N_NODES), 4))
        state = arch.delta_state(N_NODES, faults, tp_size)
        breakdown, state = arch.breakdown_delta(state)
        assert breakdown == arch.breakdown(N_NODES, faults, tp_size)
        for _ in range(300):
            node = rng.randrange(N_NODES)
            if node in faults:
                faults.discard(node)
                breakdown, state = arch.breakdown_delta(state, removed_faults=[node])
            else:
                faults.add(node)
                breakdown, state = arch.breakdown_delta(state, added_faults=[node])
            assert breakdown == arch.breakdown(N_NODES, faults, tp_size)
            assert state.faults == frozenset(faults)

    def test_multi_node_deltas(self):
        arch = NVLHBD(8, gpus_per_node=4)
        state = arch.delta_state(N_NODES, {0, 1, 5}, 8)
        breakdown, state = arch.breakdown_delta(
            state, added_faults={2, 9, 10}, removed_faults={0, 5}
        )
        assert state.faults == frozenset({1, 2, 9, 10})
        assert breakdown == arch.breakdown(N_NODES, {1, 2, 9, 10}, 8)

    def test_out_of_range_nodes_are_ignored(self):
        arch = SiPRingHBD(gpus_per_node=4)
        state = arch.delta_state(N_NODES, {3}, 8)
        breakdown, state = arch.breakdown_delta(
            state, added_faults={-1, N_NODES, N_NODES + 7}
        )
        assert state.faults == frozenset({3})
        assert breakdown == arch.breakdown(N_NODES, {3}, 8)

    def test_double_add_raises(self):
        arch = NVLHBD(8, gpus_per_node=4)
        state = arch.delta_state(N_NODES, {3}, 8)
        with pytest.raises(ValueError, match="already faulty"):
            arch.breakdown_delta(state, added_faults={3})

    def test_remove_healthy_raises(self):
        arch = NVLHBD(8, gpus_per_node=4)
        state = arch.delta_state(N_NODES, {3}, 8)
        with pytest.raises(ValueError, match="not faulty"):
            arch.breakdown_delta(state, removed_faults={4})

    def test_add_and_remove_same_node_raises(self):
        arch = NVLHBD(8, gpus_per_node=4)
        state = arch.delta_state(N_NODES, {3}, 8)
        with pytest.raises(ValueError, match="both added and removed"):
            arch.breakdown_delta(state, added_faults={6}, removed_faults={6})

    def test_fallback_architecture_is_total(self):
        # Big-Switch is the only remaining full-recompute fallback: its
        # capacity is a single global remainder with no local structure.
        arch = BigSwitchHBD(4)
        assert not arch.supports_delta
        state = arch.delta_state(N_NODES, {1, 2}, 8)
        assert state.aux is None
        breakdown, state = arch.breakdown_delta(state, added_faults={7})
        assert breakdown == arch.breakdown(N_NODES, {1, 2, 7}, 8)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        k=st.integers(min_value=1, max_value=4),
        ring=st.booleans(),
        tp_index=st.integers(0, 3),
        flips=st.lists(st.integers(min_value=0, max_value=39), max_size=60),
        initial=st.sets(st.integers(min_value=0, max_value=39), max_size=12),
    )
    def test_infinitehbd_local_update_matches_topology(
        self, n, k, ring, tp_index, flips, initial
    ):
        """The K-hop local update is bit-for-bit the topology recompute.

        Every flip only touches the segment(s) within reach of the node
        (bounded by the nearest breakpoints), so this walk stresses run
        merges/splits, wrap-around runs and the no-breakpoint single-segment
        ring across K, ring/line mode and TP sizes.
        """
        tp_size = (2, 4, 8, 16)[tp_index]
        arch = InfiniteHBDArchitecture(k=k, gpus_per_node=4, ring=ring)
        faults = {f for f in initial if f < n}
        state = arch.delta_state(n, faults, tp_size)
        assert state.usable == arch.usable_gpus(n, faults, tp_size)
        for node in flips:
            node %= n
            if node in faults:
                faults.discard(node)
                breakdown, state = arch.breakdown_delta(state, removed_faults=[node])
            else:
                faults.add(node)
                breakdown, state = arch.breakdown_delta(state, added_faults=[node])
            assert breakdown.usable_gpus == arch.usable_gpus(n, faults, tp_size)
            assert state.faults == frozenset(faults)

    def test_infeasible_tp_stays_zero(self):
        arch = NVLHBD(8, gpus_per_node=4)  # tp 16 > hbd_size 8
        state = arch.delta_state(N_NODES, set(), 16)
        breakdown, state = arch.breakdown_delta(state, added_faults={0})
        assert breakdown.usable_gpus == 0
        breakdown, state = arch.breakdown_delta(state, removed_faults={0})
        assert breakdown.usable_gpus == 0


# --------------------------------------------------------------------------
# replay equality: delta walk == memoized full recompute == seed grid path
# --------------------------------------------------------------------------
class TestDeltaReplayEquality:
    @settings(max_examples=40, deadline=None)
    @given(raw=st.lists(float_event, max_size=30), tp_index=st.integers(0, 2))
    def test_delta_replay_bit_for_bit(self, raw, tp_index):
        tp_size = (4, 8, 16)[tp_index]
        trace = build_trace(raw)
        timeline = trace.interval_timeline()
        for arch in ARCHITECTURES:
            full = replay_intervals(arch, timeline, tp_size, incremental=False)
            delta = replay_intervals(arch, timeline, tp_size, incremental=True)
            assert delta == full

    @settings(max_examples=20, deadline=None)
    @given(raw=st.lists(float_event, max_size=20))
    def test_delta_replay_matches_seed_grid_path(self, raw):
        """Grid samples are resampled intervals, so the three paths agree."""
        trace = build_trace(raw)
        timeline = trace.interval_timeline()
        arch = NVLHBD(8, gpus_per_node=4)
        delta = replay_intervals(arch, timeline, 8, incremental=True)
        grid = replay_timeline(
            arch, FaultTimeline.from_trace(trace, sample_interval_hours=1.0), 8
        )
        # Each grid sample falls inside exactly one interval; its replayed
        # value must equal that interval's delta-replayed value.
        index = 0
        for t_days, waste in zip(grid.times_days, grid.waste_ratios):
            t = t_days * HOURS_PER_DAY
            while index < len(delta) - 1 and delta.ends_hours[index] <= t:
                index += 1
            assert waste == delta.waste_ratios[index]

    def test_auto_mode_picks_delta_only_when_supported(self):
        trace = build_trace([(0, 10.0, 5.0), (7, 30.0, 2.0)])
        timeline = trace.interval_timeline()
        for arch in ARCHITECTURES:
            auto = replay_intervals(arch, timeline, 8)
            full = replay_intervals(arch, timeline, 8, incremental=False)
            assert auto == full


# --------------------------------------------------------------------------
# streaming aggregation
# --------------------------------------------------------------------------
def assert_streaming_matches(streaming, materialised, exact):
    approx = (lambda x: x) if exact else (lambda x: pytest.approx(x, rel=1e-9, abs=1e-12))
    assert len(streaming) == len(materialised)
    assert streaming.total_gpus == materialised.total_gpus
    assert streaming.min_usable_gpus == materialised.min_usable_gpus
    assert streaming.max_waste_ratio == materialised.max_waste_ratio
    assert streaming.mean_waste_ratio == approx(materialised.mean_waste_ratio)
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert streaming.waste_ratio_quantile(q) == approx(
            materialised.waste_ratio_quantile(q)
        )
    for job_gpus in (1, 16, 40, 96):
        assert streaming.fault_waiting_rate(job_gpus) == approx(
            materialised.fault_waiting_rate(job_gpus)
        )
    assert streaming.supported_job_scale(1.0) == materialised.supported_job_scale(1.0)
    if exact:
        for availability in (0.5, 0.9, 0.99):
            assert streaming.supported_job_scale(availability) == \
                materialised.supported_job_scale(availability)
    # The streaming CDF collapses duplicate values; as a step function it is
    # the materialised CDF evaluated at the last duplicate of each value.
    values, cumulative = streaming.waste_ratio_cdf()
    m_values, m_cumulative = materialised.waste_ratio_cdf()
    expected = {}
    for v, c in zip(m_values, m_cumulative):
        expected[v] = c  # later (higher-cumulative) duplicates win
    assert values == sorted(expected)
    for v, c in zip(values, cumulative):
        assert c == approx(expected[v])


class TestStreamingAggregation:
    @settings(max_examples=40, deadline=None)
    @given(raw=st.lists(int_event, max_size=30), tp_index=st.integers(0, 2))
    def test_integer_time_traces_match_exactly(self, raw, tp_index):
        """Integer durations sum exactly, so grouping loses nothing at all."""
        tp_size = (4, 8, 16)[tp_index]
        trace = build_trace(raw)
        timeline = trace.interval_timeline()
        for arch in (NVLHBD(8, gpus_per_node=4), SiPRingHBD(gpus_per_node=4)):
            materialised = replay_intervals(arch, timeline, tp_size)
            streaming = replay_intervals(arch, timeline, tp_size, streaming=True)
            assert_streaming_matches(streaming, materialised, exact=True)

    @settings(max_examples=40, deadline=None)
    @given(raw=st.lists(float_event, max_size=30))
    def test_float_time_traces_match_within_tolerance(self, raw):
        trace = build_trace(raw)
        timeline = trace.interval_timeline()
        for arch in (NVLHBD(8, gpus_per_node=4), BigSwitchHBD(gpus_per_node=4)):
            materialised = replay_intervals(arch, timeline, 8)
            streaming = replay_intervals(arch, timeline, 8, streaming=True)
            assert_streaming_matches(streaming, materialised, exact=False)

    def test_streaming_works_for_both_replay_modes(self):
        trace = build_trace([(0, 5.0, 20.0), (3, 40.0, 8.0), (9, 41.0, 3.0)])
        timeline = trace.interval_timeline()
        arch = NVLHBD(8, gpus_per_node=4)
        s_delta = replay_intervals(arch, timeline, 8, incremental=True, streaming=True)
        s_full = replay_intervals(arch, timeline, 8, incremental=False, streaming=True)
        assert s_delta.mean_waste_ratio == s_full.mean_waste_ratio
        assert s_delta.waste_ratio_cdf() == s_full.waste_ratio_cdf()

    def test_empty_timeline(self):
        timeline = IntervalStream(iter(()), n_nodes=N_NODES, gpus_per_node=4)
        series = replay_intervals(NVLHBD(8, gpus_per_node=4), timeline, 8, streaming=True)
        assert len(series) == 0
        assert series.total_hours == 0.0
        assert series.mean_waste_ratio == 0.0
        assert series.supported_job_scale(1.0) == 0


# --------------------------------------------------------------------------
# generator-backed replay: the interval list is never materialised
# --------------------------------------------------------------------------
class TestGeneratorBackedReplay:
    N_INTERVALS = 100_000

    def _interval_generator(self):
        """A square-wave fault process far longer than anyone should hold.

        Yields intervals lazily; alternating halves have node 0 faulty.  A
        materialising replay would build five 100k-entry lists; the
        streaming replay folds each interval into O(distinct levels)
        accumulators as it goes.
        """
        for i in range(self.N_INTERVALS):
            nodes = frozenset({0}) if i % 2 else frozenset()
            yield FaultInterval(float(i), float(i + 1), nodes)

    def test_streaming_replay_of_generator_timeline(self):
        arch = NVLHBD(8, gpus_per_node=4)
        timeline = IntervalStream(
            intervals=self._interval_generator(), n_nodes=N_NODES, gpus_per_node=4
        )
        series = replay_intervals(arch, timeline, 8, streaming=True)
        assert isinstance(series, StreamingIntervalSeries)
        assert len(series) == self.N_INTERVALS
        # Aggregates-only by construction: no per-interval storage exists.
        assert not hasattr(series, "waste_ratios")
        assert not hasattr(series, "starts_hours")
        assert series.waste.n_values == 2
        assert series.usable.n_values == 2
        # Closed form: node 0 faulty half the time; on NVL-8 one faulty
        # 4-GPU node wastes the other 4 GPUs of its unit at TP-8.
        healthy = arch.breakdown(N_NODES, (), 8)
        degraded = arch.breakdown(N_NODES, {0}, 8)
        assert series.min_usable_gpus == degraded.usable_gpus
        expected_mean = (healthy.waste_ratio + degraded.waste_ratio) / 2.0
        assert series.mean_waste_ratio == pytest.approx(expected_mean, rel=1e-12)
        assert series.fault_waiting_rate(healthy.usable_gpus) == pytest.approx(
            0.5, rel=1e-12
        )
        assert series.total_hours == float(self.N_INTERVALS)
        # The generator is exhausted -- proof the walk consumed it lazily
        # rather than snapshotting it up front.
        assert next(iter(timeline.intervals), None) is None


# --------------------------------------------------------------------------
# scheduler capacity queries ride the same delta states
# --------------------------------------------------------------------------
class TestSchedulerDeltaCapacity:
    @settings(max_examples=15, deadline=None)
    @given(raw=st.lists(float_event, max_size=20))
    def test_scheduler_report_identical_with_and_without_delta(self, raw):
        from repro.scheduler import ClusterScheduler, JobSpec

        trace = build_trace(raw)
        timeline = trace.interval_timeline()
        jobs = [
            JobSpec(name="a", gpus=32, tp_size=8, work_hours=30.0),
            JobSpec(name="b", gpus=16, tp_size=8, work_hours=10.0, submit_hour=5.0),
            JobSpec(name="c", gpus=64, tp_size=8, work_hours=4.0, submit_hour=6.0),
        ]

        class _NoDeltaNVL(NVLHBD):
            supports_delta = False

        fast = ClusterScheduler(
            NVLHBD(8, gpus_per_node=4), timeline, jobs,
            horizon_hours=DURATION_HOURS,
        ).run()
        slow = ClusterScheduler(
            _NoDeltaNVL(8, gpus_per_node=4), timeline, jobs,
            horizon_hours=DURATION_HOURS,
        ).run()
        assert fast == slow


# --------------------------------------------------------------------------
# the StreamingDistribution accumulator itself
# --------------------------------------------------------------------------
class TestStreamingDistribution:
    def test_empty(self):
        dist = StreamingDistribution()
        assert dist.mean() == 0.0
        assert dist.min() == 0.0 and dist.max() == 0.0
        assert dist.cdf() == ([], [])
        assert len(dist) == 0 and dist.n_values == 0

    def test_rejects_negative_weight(self):
        dist = StreamingDistribution()
        with pytest.raises(ValueError):
            dist.add(1.0, -0.5)

    def test_zero_weight_value_still_counts_as_level(self):
        dist = StreamingDistribution()
        dist.add(5.0, 0.0)
        dist.add(7.0, 2.0)
        assert dist.min() == 5.0
        assert dist.mean() == 7.0

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_materialised_helpers(self, pairs):
        """Integer values/weights: exact agreement with the list-based helpers."""
        values = [float(v) for v, _ in pairs]
        weights = [float(w) for _, w in pairs]
        dist = StreamingDistribution()
        for v, w in zip(values, weights):
            dist.add(v, w)
        assert dist.total_weight == sum(weights)
        if sum(weights) > 0:
            assert dist.mean() == pytest.approx(
                sum(v * w for v, w in zip(values, weights)) / sum(weights)
            )
            for q in (0.0, 0.25, 0.5, 0.9, 1.0):
                assert dist.quantile(q) == weighted_quantile(values, weights, q)
            sorted_distinct, cumulative = dist.cdf()
            ref_values, ref_cumulative = empirical_cdf(values, weights)
            ref_last = {v: c for v, c in zip(ref_values, ref_cumulative)}
            assert sorted_distinct == sorted(ref_last)
            for v, c in zip(sorted_distinct, cumulative):
                assert c == pytest.approx(ref_last[v])
        threshold = 4.5
        assert dist.weight_below(threshold) == sum(
            w for v, w in zip(values, weights) if v < threshold
        )
