"""Tests for the collective cost model, ring AllReduce and AllToAll algorithms."""

import math

import pytest

from repro.collectives.cost_model import (
    CollectiveCost,
    DCN_NIC_LINK,
    INFINITEHBD_GPU_LINK,
    LinkSpec,
    NVLINK_SWITCH_LINK,
    PCIE4_EXPERIMENTAL_LINK,
)
from repro.collectives.ring_allreduce import (
    RingAllReduceModel,
    ring_allreduce_time,
    ring_allreduce_utilization,
)
from repro.collectives.alltoall import (
    binary_exchange_alltoall,
    binary_exchange_cost,
    bruck_cost,
    complexity_comparison,
    pairwise_cost,
    pairwise_exchange_alltoall,
    ring_alltoall_cost,
)


class TestLinkSpec:
    def test_bandwidth_conversions(self):
        link = LinkSpec(bandwidth_gbps=800.0, latency_us=2.0, protocol_efficiency=0.5)
        assert link.bandwidth_bytes_per_s == pytest.approx(1e11)
        assert link.effective_bytes_per_s == pytest.approx(5e10)

    def test_transfer_time_alpha_beta(self):
        link = LinkSpec(bandwidth_gbps=8.0, latency_us=10.0, protocol_efficiency=1.0)
        # 1e9 bytes at 1e9 B/s = 1 s plus 10 us alpha
        assert link.transfer_time_s(1e9) == pytest.approx(1.00001)

    def test_zero_message_is_free(self):
        assert INFINITEHBD_GPU_LINK.transfer_time_s(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_gbps=1.0, latency_us=-1.0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_gbps=1.0, protocol_efficiency=0.0)
        with pytest.raises(ValueError):
            INFINITEHBD_GPU_LINK.transfer_time_s(-5)


class TestRingAllReduce:
    def test_steps_and_wire_bytes(self):
        cost = ring_allreduce_time(8, 1024.0, INFINITEHBD_GPU_LINK)
        assert cost.steps == 14
        assert cost.total_bytes_on_wire == pytest.approx(8 * 14 * 128.0)

    def test_single_rank_is_free(self):
        cost = ring_allreduce_time(1, 1024.0, INFINITEHBD_GPU_LINK)
        assert cost.time_s == 0.0

    def test_time_grows_with_message(self):
        small = ring_allreduce_time(16, 1 << 20, PCIE4_EXPERIMENTAL_LINK)
        large = ring_allreduce_time(16, 1 << 30, PCIE4_EXPERIMENTAL_LINK)
        assert large.time_s > small.time_s

    def test_utilization_large_message_near_protocol_efficiency(self):
        util = ring_allreduce_utilization(16, 1 << 30, PCIE4_EXPERIMENTAL_LINK)
        assert util == pytest.approx(PCIE4_EXPERIMENTAL_LINK.protocol_efficiency, abs=0.02)

    def test_utilization_small_message_is_low(self):
        util = ring_allreduce_utilization(16, 4096, PCIE4_EXPERIMENTAL_LINK)
        assert util < 0.3

    def test_section52_shape(self):
        """16 vs 32 GPU utilisation nearly flat; NVLink single node higher."""
        model = RingAllReduceModel()
        summary = model.section52_summary()
        u16 = summary["ring_16_gpu_utilization"]
        u32 = summary["ring_32_gpu_utilization"]
        u_nvlink = summary["nvlink_8_gpu_utilization"]
        assert 0.70 <= u16 <= 0.82
        assert 0.70 <= u32 <= 0.82
        assert abs(u16 - u32) < 0.02
        assert u_nvlink > u16

    def test_small_packet_latency_advantage(self):
        advantage = RingAllReduceModel().small_packet_latency_advantage()
        assert 0.0 < advantage < 0.25

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(0, 100, INFINITEHBD_GPU_LINK)
        with pytest.raises(ValueError):
            ring_allreduce_time(4, -1, INFINITEHBD_GPU_LINK)


class TestAllToAllFunctional:
    def test_binary_exchange_correctness_small(self):
        p = 4
        blocks = [[f"{src}->{dst}" for dst in range(p)] for src in range(p)]
        result = binary_exchange_alltoall(blocks)
        for dst in range(p):
            for src in range(p):
                assert result[dst][src] == f"{src}->{dst}"

    @pytest.mark.parametrize("p", [1, 2, 8, 16, 32])
    def test_binary_exchange_correctness_sizes(self, p):
        blocks = [[(src, dst) for dst in range(p)] for src in range(p)]
        result = binary_exchange_alltoall(blocks)
        for dst in range(p):
            assert result[dst] == [(src, dst) for src in range(p)]

    def test_binary_exchange_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            binary_exchange_alltoall([[1, 2, 3]] * 3)

    def test_binary_exchange_rejects_ragged_blocks(self):
        with pytest.raises(ValueError):
            binary_exchange_alltoall([[1, 2], [1]])

    def test_pairwise_matches_binary_exchange(self):
        p = 8
        blocks = [[(src, dst) for dst in range(p)] for src in range(p)]
        assert pairwise_exchange_alltoall(blocks) == binary_exchange_alltoall(blocks)


class TestAllToAllCosts:
    def test_binary_exchange_step_count(self):
        cost = binary_exchange_cost(16, 1 << 20, INFINITEHBD_GPU_LINK)
        assert cost.steps == 4
        assert cost.requires_fast_switch

    def test_ring_step_count_and_forwarding(self):
        cost = ring_alltoall_cost(16, 1 << 20, INFINITEHBD_GPU_LINK)
        assert cost.steps == 15
        assert cost.requires_gpu_forwarding

    def test_binary_exchange_beats_ring_for_large_groups(self):
        """Appendix G: O(p log p) vs O(p^2)."""
        for p in (8, 16, 64, 128):
            ring = ring_alltoall_cost(p, 1 << 20, INFINITEHBD_GPU_LINK)
            bex = binary_exchange_cost(p, 1 << 20, INFINITEHBD_GPU_LINK)
            assert bex.time_s < ring.time_s

    def test_ring_to_binary_ratio_grows_with_p(self):
        ratios = []
        for p in (8, 32, 128):
            ring = ring_alltoall_cost(p, 1 << 20, INFINITEHBD_GPU_LINK)
            bex = binary_exchange_cost(p, 1 << 20, INFINITEHBD_GPU_LINK)
            ratios.append(ring.time_s / bex.time_s)
        assert ratios == sorted(ratios)

    def test_binary_exchange_matches_bruck_volume(self):
        """Paper: for p < 8 with K=2, performance matches the ideal Bruck."""
        bex = binary_exchange_cost(4, 1 << 20, INFINITEHBD_GPU_LINK)
        bruck = bruck_cost(4, 1 << 20, INFINITEHBD_GPU_LINK)
        assert bex.time_s == pytest.approx(bruck.time_s)

    def test_reconfiguration_overhead_optional(self):
        overlapped = binary_exchange_cost(16, 1 << 20, INFINITEHBD_GPU_LINK)
        exposed = binary_exchange_cost(
            16, 1 << 20, INFINITEHBD_GPU_LINK, overlap_reconfiguration=False
        )
        assert exposed.time_s > overlapped.time_s
        assert exposed.time_s - overlapped.time_s == pytest.approx(4 * 70e-6, rel=1e-6)

    def test_pairwise_cost_steps(self):
        cost = pairwise_cost(8, 1 << 20, INFINITEHBD_GPU_LINK)
        assert cost.steps == 7
        assert cost.bytes_per_step == 1 << 20

    def test_single_rank_costs_are_zero(self):
        for fn in (ring_alltoall_cost, pairwise_cost, bruck_cost, binary_exchange_cost):
            assert fn(1, 1 << 20, INFINITEHBD_GPU_LINK).time_s == 0.0

    def test_complexity_comparison_table(self):
        rows = complexity_comparison([2, 4, 8, 16], 1 << 20, INFINITEHBD_GPU_LINK)
        assert len(rows) == 4
        for row in rows:
            assert set(row) == {
                "group_size", "ring_s", "binary_exchange_s", "bruck_s", "pairwise_s"
            }

    def test_total_bytes_per_node(self):
        cost = binary_exchange_cost(16, 1024.0, INFINITEHBD_GPU_LINK)
        assert cost.total_bytes_per_node == pytest.approx(4 * 16 / 2 * 1024.0)


class TestCollectiveCostDataclass:
    def test_bandwidth_properties(self):
        cost = CollectiveCost(
            algorithm="x", group_size=4, message_bytes=100.0, steps=2,
            total_bytes_on_wire=400.0, time_s=2.0,
        )
        assert cost.algorithm_bandwidth_bytes_per_s == pytest.approx(50.0)
        assert cost.bus_bandwidth_bytes_per_s == pytest.approx(50.0)

    def test_zero_time(self):
        cost = CollectiveCost("x", 4, 0.0, 0, 0.0, 0.0)
        assert cost.algorithm_bandwidth_bytes_per_s == 0.0
        assert cost.bus_bandwidth_bytes_per_s == 0.0
