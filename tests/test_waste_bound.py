"""Tests for the Appendix C theoretical waste-ratio bound (Table 7)."""

import numpy as np
import pytest

from repro.analysis.waste_bound import (
    TABLE7_NODE_FAILURE_RATE,
    breakpoint_expectation_per_node,
    expected_waste_per_breakpoint,
    waste_bound_table,
    waste_ratio_upper_bound,
)
from repro.faults.model import sample_fault_set
from repro.hbd.infinitehbd import InfiniteHBDArchitecture


class TestBoundFormulas:
    def test_breakpoint_expectation(self):
        assert breakpoint_expectation_per_node(0.1, 2) == pytest.approx(
            2 * (0.01 + 0.0001)
        )

    def test_breakpoint_expectation_decays_with_k(self):
        assert breakpoint_expectation_per_node(0.05, 3) < breakpoint_expectation_per_node(0.05, 2)

    def test_expected_waste_per_breakpoint(self):
        assert expected_waste_per_breakpoint(32, 4) == 4 * 28
        assert expected_waste_per_breakpoint(8, 8) == 0

    def test_table7_values_match_paper(self):
        """Exact Table 7 entries."""
        assert waste_ratio_upper_bound(0.0367, 2, 32, 4) == pytest.approx(0.0754, abs=0.0005)
        assert waste_ratio_upper_bound(0.0367, 3, 32, 4) == pytest.approx(0.0028, abs=0.0002)
        assert waste_ratio_upper_bound(0.0367, 4, 32, 4) == pytest.approx(1.02e-4, rel=0.05)
        assert waste_ratio_upper_bound(0.0722, 2, 32, 8) == pytest.approx(0.2502, abs=0.001)
        assert waste_ratio_upper_bound(0.0722, 3, 32, 8) == pytest.approx(0.0181, abs=0.0005)
        assert waste_ratio_upper_bound(0.0722, 4, 32, 8) == pytest.approx(0.0013, abs=0.0001)

    def test_bound_zero_when_group_fits_in_node(self):
        assert waste_ratio_upper_bound(0.05, 2, 4, 8) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            breakpoint_expectation_per_node(1.5, 2)
        with pytest.raises(ValueError):
            breakpoint_expectation_per_node(0.1, 0)
        with pytest.raises(ValueError):
            expected_waste_per_breakpoint(0, 4)


class TestWasteBoundTable:
    def test_table_shape(self):
        rows = waste_bound_table()
        assert len(rows) == 2
        assert set(rows[0]) >= {"gpus_per_node", "node_failure_rate", "k2_bound", "k3_bound", "k4_bound"}

    def test_uses_published_failure_rates(self):
        assert TABLE7_NODE_FAILURE_RATE[4] == pytest.approx(0.0367)
        assert TABLE7_NODE_FAILURE_RATE[8] == pytest.approx(0.0722)

    def test_missing_rate_rejected(self):
        with pytest.raises(KeyError):
            waste_bound_table(node_sizes=(16,))


class TestBoundHoldsEmpirically:
    """The analytical bound must upper-bound the simulated waste ratio."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_simulated_waste_below_bound(self, k):
        p_s = 0.0367
        arch = InfiniteHBDArchitecture(k=k, gpus_per_node=4)
        bound = waste_ratio_upper_bound(p_s, k, 32, 4)
        rng = np.random.default_rng(123)
        n_nodes = 1000
        waste_ratios = []
        for _ in range(30):
            faults = sample_fault_set(n_nodes, p_s, rng)
            waste_ratios.append(arch.waste_ratio(n_nodes, faults, 32))
        mean_waste = float(np.mean(waste_ratios))
        # The bound also absorbs the fragmentation remainder of the whole
        # line, so allow that one-group tolerance before comparing.
        tolerance = 32 / (n_nodes * 4)
        assert mean_waste <= bound + tolerance
