"""End-to-end integration tests tying the substrates together.

These tests exercise the same pipelines the benchmark harness runs, at a
reduced scale, and assert the qualitative results the paper reports.
"""

import pytest

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.node import make_nodes
from repro.core.orchestrator import JobSpec, Orchestrator
from repro.core.ring_builder import RingBuilder
from repro.cost.analysis import aggregate_cost_sweep
from repro.dcn.fattree import FatTreeConfig
from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.model import sample_fault_set
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import InfiniteHBDArchitecture, NVLHBD, TPUv4HBD, default_architectures
from repro.simulation.cluster import ClusterSimulator
from repro.training.parallelism import optimal_mfu_table, search_optimal_strategy
from repro.training.models import llama31_405b

import numpy as np


@pytest.fixture(scope="module")
def trace4():
    source = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=400, duration_days=60, seed=99)
    )
    return convert_trace_8gpu_to_4gpu(source, seed=99)


class TestTraceToWastePipeline:
    """Synthetic trace -> conversion -> architecture replay (Figures 13/20)."""

    def test_full_pipeline_runs_for_all_architectures(self, trace4):
        for arch in default_architectures(4):
            series = ClusterSimulator(arch, trace4, n_nodes=720).run(tp_size=32)
            assert len(series.waste_ratios) == 60

    def test_headline_ordering_holds(self, trace4):
        """InfiniteHBD < TPUv4 < NVL-72 mean waste for TP-32 (Figure 13b)."""
        infinite = ClusterSimulator(
            InfiniteHBDArchitecture(k=3, gpus_per_node=4), trace4, n_nodes=720
        ).run(32).mean_waste_ratio
        tpu = ClusterSimulator(TPUv4HBD(gpus_per_node=4), trace4, n_nodes=720).run(32).mean_waste_ratio
        nvl = ClusterSimulator(NVLHBD(72, gpus_per_node=4), trace4, n_nodes=720).run(32).mean_waste_ratio
        assert infinite < tpu < nvl


class TestHardwareToTopologyPipeline:
    """Node/OCSTrx hardware objects drive the topology the simulator assumes."""

    def test_ring_construction_matches_topology_capacity(self):
        n_nodes, k, r, tp = 48, 2, 4, 32
        topo = KHopRingTopology(KHopTopologyConfig(n_nodes, k, r, ring=True))
        nodes = make_nodes(n_nodes, n_gpus=r, n_bundles=k)
        builder = RingBuilder(topo, nodes)

        faulty = {5, 20, 21}
        for node_id in faulty:
            nodes[node_id].fail()

        # The architecture model says how many GPUs are usable...
        arch = InfiniteHBDArchitecture(k=k, gpus_per_node=r)
        usable = arch.usable_gpus(n_nodes, faulty, tp)

        # ...and the ring builder must actually be able to build that many rings.
        built = 0
        segments = topo.healthy_segments(faulty)
        for segment in segments:
            nodes_per_group = topo.nodes_per_tp_group(tp)
            for start in range(0, len(segment.nodes) - nodes_per_group + 1, nodes_per_group):
                ring = builder.build_ring(list(segment.nodes[start:start + nodes_per_group]))
                built += ring.size
        assert built == usable

    def test_reconfiguration_latency_budget(self):
        """Every ring build stays within the published 60-80 us switch window."""
        topo = KHopRingTopology(KHopTopologyConfig(16, 2, 4, ring=True))
        nodes = make_nodes(16, n_gpus=4, n_bundles=2)
        builder = RingBuilder(topo, nodes)
        ring = builder.build_ring(list(range(8)))
        assert ring.reconfiguration_latency_us <= 80.0


class TestOrchestrationPipeline:
    """Fault set -> placement -> cross-ToR accounting (Figure 17)."""

    def setup_method(self):
        self.n_nodes = 512
        self.orch = Orchestrator(
            n_nodes=self.n_nodes,
            k=2,
            fat_tree_config=FatTreeConfig(
                n_nodes=self.n_nodes, nodes_per_tor=4, tors_per_domain=32
            ),
        )

    def test_optimized_beats_greedy_across_fault_ratios(self):
        job = JobSpec(total_gpus=1536, tp_size=32, gpus_per_node=4)
        rng = np.random.default_rng(7)
        for ratio in (0.0, 0.02, 0.05):
            faults = sample_fault_set(self.n_nodes, ratio, rng)
            _, opt = self.orch.place_and_report(job, faults, method="optimized")
            _, greedy = self.orch.place_and_report(job, faults, method="greedy", seed=1)
            assert opt.cross_tor_rate < greedy.cross_tor_rate

    def test_optimized_near_zero_at_low_fault_ratio(self):
        job = JobSpec(total_gpus=1536, tp_size=32, gpus_per_node=4)
        faults = sample_fault_set(self.n_nodes, 0.01, np.random.default_rng(3))
        _, report = self.orch.place_and_report(job, faults, method="optimized")
        assert report.cross_tor_rate < 0.03

    def test_cross_tor_grows_with_job_scale(self):
        faults = sample_fault_set(self.n_nodes, 0.05, np.random.default_rng(5))
        rates = []
        for scale in (1024, 1536, 1792):
            job = JobSpec(total_gpus=scale, tp_size=32, gpus_per_node=4)
            _, report = self.orch.place_and_report(job, faults, method="optimized")
            rates.append(report.cross_tor_rate)
        assert rates[0] <= rates[-1] + 1e-9


class TestCostPipeline:
    def test_aggregate_cost_ordering_matches_figure17d(self):
        curves = aggregate_cost_sweep(
            n_nodes=360, fault_ratios=(0.0, 0.05, 0.10), n_samples=3
        )
        # InfiniteHBD (K=2) is the cheapest curve at every fault ratio.
        for i in range(3):
            best = min(curves, key=lambda name: curves[name][i])
            assert best == "InfiniteHBD(K=2)"
        # NVL-576 is the most expensive (highest interconnect cost).
        assert max(curves, key=lambda name: curves[name][0]) == "NVL-576"


class TestTrainingPipeline:
    def test_mfu_gain_vs_dgx_baseline(self):
        """Abstract: InfiniteHBD enables >3x MFU vs an 8-GPU/node DGX at scale."""
        rows = optimal_mfu_table(llama31_405b(), [131072], global_batch=2048)
        assert rows[0]["improvement"] > 3.0

    def test_search_is_stable(self):
        a = search_optimal_strategy(llama31_405b(), 4096, 2048)
        b = search_optimal_strategy(llama31_405b(), 4096, 2048)
        assert a.best_config == b.best_config
