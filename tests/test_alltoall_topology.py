"""Tests for the power-of-two AllToAll wiring (Appendix G.3)."""

import networkx as nx
import pytest

from repro.core.alltoall_topology import AllToAllTopologyConfig, PowerOfTwoTopology


def make(n=64, bundles=4, r=4, ring=True):
    return PowerOfTwoTopology(
        AllToAllTopologyConfig(n_nodes=n, n_bundles=bundles, gpus_per_node=r, ring=ring)
    )


class TestConfig:
    def test_reach_and_product_limits(self):
        config = AllToAllTopologyConfig(n_nodes=64, n_bundles=4, gpus_per_node=4)
        assert config.max_reach == 8
        assert config.max_group_product == 32

    def test_8gpu_node_limit(self):
        config = AllToAllTopologyConfig(n_nodes=512, n_bundles=8, gpus_per_node=8)
        assert config.max_group_product == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            AllToAllTopologyConfig(n_nodes=0)
        with pytest.raises(ValueError):
            AllToAllTopologyConfig(n_nodes=4, n_bundles=0)


class TestLinks:
    def test_link_distances_are_powers_of_two(self):
        assert make(bundles=4).link_distances() == [1, 2, 4, 8]

    def test_neighbors(self):
        topo = make(n=32, bundles=3)
        assert topo.neighbors(0) == sorted({1, 2, 4, 31, 30, 28})

    def test_has_link_power_of_two_only(self):
        topo = make(n=64, bundles=4)
        assert topo.has_link(0, 8)
        assert not topo.has_link(0, 3)
        assert not topo.has_link(0, 16)

    def test_ring_wraps(self):
        topo = make(n=64, bundles=4)
        assert topo.has_link(0, 62)  # distance 2 across the wrap

    def test_line_mode_has_no_wrap(self):
        topo = make(n=16, bundles=3, ring=False)
        assert not topo.has_link(0, 15)
        assert topo.neighbors(15) == [11, 13, 14]

    def test_graph_degree(self):
        g = make(n=64, bundles=4).graph()
        assert all(deg == 8 for _, deg in g.degree())
        assert nx.is_connected(g)


class TestBinaryExchangeSupport:
    def test_consecutive_group_is_supported(self):
        topo = make(n=64, bundles=4)
        assert topo.supports_binary_exchange(list(range(8)))

    def test_schedule_shape(self):
        topo = make(n=64, bundles=4)
        schedule = topo.binary_exchange_rounds(list(range(8)))
        assert len(schedule) == 3
        assert all(len(pairs) == 4 for pairs in schedule)

    def test_schedule_pairs_use_direct_links(self):
        topo = make(n=64, bundles=4)
        for pairs in topo.binary_exchange_rounds(list(range(16, 24))):
            for a, b in pairs:
                assert topo.has_link(a, b)

    def test_group_exceeding_reach_not_supported(self):
        topo = make(n=64, bundles=3)  # max reach 4
        assert not topo.supports_binary_exchange(list(range(16)))

    def test_non_power_of_two_rejected(self):
        topo = make()
        with pytest.raises(ValueError):
            topo.binary_exchange_rounds([0, 1, 2])

    def test_duplicates_rejected(self):
        topo = make()
        with pytest.raises(ValueError):
            topo.binary_exchange_rounds([0, 1, 1, 2])

    def test_ep_group_with_stride(self):
        topo = make(n=64, bundles=4)
        assert topo.ep_group(start=4, ep_size=4, stride=2) == [4, 6, 8, 10]

    def test_ep_group_line_overflow(self):
        topo = make(n=16, bundles=3, ring=False)
        with pytest.raises(ValueError):
            topo.ep_group(start=14, ep_size=4, stride=1)


class TestTPEPPlanning:
    def test_tp4_ep4_on_4gpu_node(self):
        """The Figure 24 configuration: TP4 within a node, EP4 across 4 nodes."""
        topo = make(n=16, bundles=4, r=4)
        plan = topo.plan_tp_ep(start=0, tp_size=4, ep_size=4)
        assert plan["ep_leads"] == [0, 1, 2, 3]
        assert plan["nodes_per_tp_group"] == 1
        assert len(plan["exchange_schedule"]) == 2
        # Step 1 pairs 0-2 and 1-3; step 2 pairs 0-1 and 2-3 (Figure 24).
        assert set(plan["exchange_schedule"][0]) == {(0, 2), (1, 3)}
        assert set(plan["exchange_schedule"][1]) == {(0, 1), (2, 3)}

    def test_tp_ep_product_limit_enforced(self):
        topo = make(n=256, bundles=4, r=4)
        with pytest.raises(ValueError):
            topo.validate_tp_ep(32, 4)  # 128 GPUs > the 32-GPU wiring limit
        with pytest.raises(ValueError):
            topo.plan_tp_ep(start=0, tp_size=16, ep_size=8)

    def test_8gpu_node_supports_larger_products(self):
        topo = make(n=512, bundles=8, r=8)
        topo.validate_tp_ep(64, 16)  # 1024 <= 8 * 128
        plan = topo.plan_tp_ep(start=0, tp_size=64, ep_size=8)
        assert plan["nodes_per_tp_group"] == 8
        assert len(plan["ep_leads"]) == 8

    def test_ep_must_be_power_of_two(self):
        topo = make()
        with pytest.raises(ValueError):
            topo.validate_tp_ep(4, 3)

    def test_tp_spans_do_not_overlap(self):
        topo = make(n=64, bundles=4, r=4)
        plan = topo.plan_tp_ep(start=8, tp_size=8, ep_size=4)
        all_nodes = [n for span in plan["tp_spans"].values() for n in span]
        assert len(all_nodes) == len(set(all_nodes))
