"""Determinism linter tests (``repro.devtools``).

Three layers:

* every rule's ``bad`` snippet must trigger its code and its ``good``
  snippet must not -- the documented examples are the fixtures, so the
  ``--explain`` output can never drift from the implementation;
* framework behaviour -- inline suppressions, pyproject config parsing,
  module scoping, JSON output, CLI exit codes;
* the self-lint gate -- ``src/`` must lint clean, with zero suppressions
  inside the determinism-critical engine modules.
"""

import io
import json
from pathlib import Path

import pytest

from repro.devtools import (
    LintConfig,
    default_rules,
    lint_paths,
    lint_source,
    load_config,
    module_name_for_path,
    rule_by_code,
)
from repro.devtools.engine import parse_suppressions
from repro.devtools.lint import run as lint_run
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Modules where a suppression comment is a review error, not a waiver.
PROTECTED_MODULES = {
    "repro.faults.timeline",
    "repro.scheduler.engine",
    "repro.scheduler.placement",
}

RULES = default_rules()


# ------------------------------------------------------------------ fixtures
@pytest.mark.parametrize("rule", RULES, ids=lambda rule: rule.code)
def test_bad_snippet_triggers_rule(rule):
    result = lint_source(rule.bad, module=rule.example_module)
    codes = [finding.code for finding in result.findings]
    assert rule.code in codes, f"{rule.code} bad example produced {codes}"


@pytest.mark.parametrize("rule", RULES, ids=lambda rule: rule.code)
def test_good_snippet_is_clean(rule):
    result = lint_source(rule.good, module=rule.example_module)
    own = [finding for finding in result.findings if finding.code == rule.code]
    assert not own, f"{rule.code} good example still flagged: {own}"


@pytest.mark.parametrize("rule", RULES, ids=lambda rule: rule.code)
def test_explain_mentions_code_and_suppression(rule):
    text = type(rule).explain()
    assert rule.code in text
    assert f"# repro: allow[{rule.code}]" in text


def test_rule_codes_are_unique_and_ordered():
    codes = [rule.code for rule in RULES]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert rule_by_code("D001") is type(RULES[0])
    assert rule_by_code("Z999") is None


# -------------------------------------------------------------- suppressions
def test_inline_suppression_moves_finding_to_suppressed():
    source = "import random\n\nvalue = random.random()  # repro: allow[D001]\n"
    result = lint_source(source, module="repro.example")
    assert result.ok
    assert [finding.code for finding in result.suppressed] == ["D001"]


def test_suppression_is_per_line_and_per_code():
    source = (
        "import random\n"
        "a = random.random()  # repro: allow[D002]\n"  # wrong code: no waiver
        "b = random.random()\n"
    )
    result = lint_source(source, module="repro.example")
    assert [finding.line for finding in result.findings] == [2, 3]
    assert not result.suppressed


def test_parse_suppressions_handles_code_lists():
    source = "x = 1  # repro: allow[D001, D003]\ny = 2\n"
    assert parse_suppressions(source) == {1: {"D001", "D003"}}


# -------------------------------------------------------------------- config
def test_from_mapping_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown"):
        LintConfig.from_mapping({"engine-modulez": ["repro"]})


def test_from_mapping_rejects_malformed_codes():
    with pytest.raises(ValueError, match="rule codes"):
        LintConfig.from_mapping({"ignore": ["D1"]})


def test_global_ignore_disables_rule():
    config = LintConfig.from_mapping({"ignore": ["D001"]})
    result = lint_source("import random\nx = random.random()\n",
                         module="repro.example", config=config)
    assert result.ok


def test_per_file_ignores_match_globs():
    config = LintConfig.from_mapping(
        {"per-file-ignores": {"legacy_*.py": ["D001"]}}
    )
    source = "import random\nx = random.random()\n"
    hit = lint_source(source, module="repro.example", config=config,
                      path="src/repro/fresh.py")
    miss = lint_source(source, module="repro.example", config=config,
                       path="src/repro/legacy_rng.py")
    assert [finding.code for finding in hit.findings] == ["D001"]
    assert miss.ok


def test_module_scoping_limits_rules():
    config = LintConfig(engine_modules=("somepkg",))
    result = lint_source("import random\nx = random.random()\n",
                         module="repro.example", config=config)
    assert result.ok


def test_from_pyproject_roundtrip(tmp_path):
    pytest.importorskip("tomllib")
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.repro-lint]\n"
        'engine-modules = ["repro"]\n'
        'ignore = ["D008"]\n'
        "[tool.repro-lint.per-file-ignores]\n"
        '"*/generated_*.py" = ["D003"]\n'
    )
    config = LintConfig.from_pyproject(pyproject)
    assert config.ignore == ("D008",)
    assert config.per_file_ignores == (("*/generated_*.py", ("D003",)),)


def test_repo_pyproject_config_loads():
    config = load_config(SRC)
    assert config.engine_modules == ("repro",)
    assert "repro.scheduler" in config.ordered_modules


def test_module_name_for_path():
    path = SRC / "repro" / "scheduler" / "engine.py"
    assert module_name_for_path(path) == "repro.scheduler.engine"
    assert module_name_for_path(SRC / "repro" / "__init__.py") == "repro"


# ----------------------------------------------------------------------- CLI
def test_cli_list_rules_and_explain():
    stream = io.StringIO()
    assert lint_run(["--list-rules"], stream=stream) == 0
    listed = stream.getvalue()
    for rule in RULES:
        assert rule.code in listed

    stream = io.StringIO()
    assert lint_run(["--explain", "d001"], stream=stream) == 0
    assert "D001" in stream.getvalue()


def _write_package_module(tmp_path, name, source):
    """Write ``source`` as ``repro/<name>.py`` so module scoping applies."""
    package = tmp_path / "repro"
    package.mkdir(exist_ok=True)
    (package / "__init__.py").touch()
    path = package / name
    path.write_text(source)
    return path


def test_cli_json_output_and_exit_code(tmp_path):
    bad = _write_package_module(tmp_path, "bad.py",
                                "import random\nx = random.random()\n")
    stream = io.StringIO()
    status = lint_run([str(bad), "--format", "json",
                       "--config", str(REPO_ROOT / "pyproject.toml")],
                      stream=stream)
    assert status == 1
    payload = json.loads(stream.getvalue())
    assert payload["counts"] == {"D001": 1}
    assert payload["findings"][0]["code"] == "D001"
    assert payload["findings"][0]["line"] == 2


def test_cli_clean_file_exits_zero(tmp_path):
    good = _write_package_module(
        tmp_path, "good.py",
        "import random\nrng = random.Random(7)\nx = rng.random()\n",
    )
    stream = io.StringIO()
    assert lint_run([str(good), "--config",
                     str(REPO_ROOT / "pyproject.toml")], stream=stream) == 0
    assert "0 finding(s)" in stream.getvalue()


def test_repro_cli_lint_subcommand(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_repro_cli_lint_subcommand_fails_on_findings(tmp_path, capsys):
    bad = _write_package_module(tmp_path, "bad.py",
                                "import random\nx = random.random()\n")
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["lint", str(bad)])
    assert excinfo.value.code == 1
    assert "D001" in capsys.readouterr().out


# ------------------------------------------------------------------ self-lint
def test_src_tree_lints_clean():
    result = lint_paths([SRC], config=load_config(SRC))
    rendered = "\n".join(finding.render() for finding in result.findings)
    assert result.ok, f"determinism linter findings in src/:\n{rendered}"


def test_protected_modules_carry_no_suppressions():
    result = lint_paths([SRC], config=load_config(SRC))
    waived = {finding.module for finding in result.suppressed}
    assert not waived & PROTECTED_MODULES

    # Stronger than the merged result: the files must not contain the
    # waiver comment at all, even on lines no rule currently flags.
    for module in sorted(PROTECTED_MODULES):
        path = SRC.joinpath(*module.split(".")).with_suffix(".py")
        assert parse_suppressions(path.read_text(encoding="utf-8")) == {}, (
            f"suppression comment found in determinism-critical {module}"
        )
