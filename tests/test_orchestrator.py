"""Tests for the HBD-DCN orchestration algorithms (Algorithms 1-5)."""

import pytest

from repro.core.orchestrator import (
    DeploymentPlan,
    JobSpec,
    Orchestrator,
    TPGroup,
    deployment_strategy,
    greedy_placement,
    orchestrate_dcn_free,
    orchestrate_fat_tree,
    placement_fat_tree,
)
from repro.dcn.fattree import FatTree, FatTreeConfig


class TestJobSpec:
    def test_nodes_per_group(self):
        job = JobSpec(total_gpus=256, tp_size=32, gpus_per_node=4)
        assert job.nodes_per_group == 8
        assert job.groups_needed == 8

    def test_tp_smaller_than_node(self):
        job = JobSpec(total_gpus=64, tp_size=2, gpus_per_node=4)
        assert job.nodes_per_group == 1

    def test_rejects_non_divisible_scale(self):
        with pytest.raises(ValueError):
            JobSpec(total_gpus=100, tp_size=32, gpus_per_node=4)

    def test_rejects_incompatible_tp_and_node(self):
        with pytest.raises(ValueError):
            JobSpec(total_gpus=96, tp_size=6, gpus_per_node=4)


class TestDeploymentStrategy:
    def test_interleaves_sublines(self):
        plan = deployment_strategy(n_nodes=16, k=2, nodes_per_tor=4)
        # sub-line 0 = ToR position 0 of every ToR: nodes 0, 4, 8, 12, then
        # sub-line 1 = 1, 5, 9, 13, etc.
        assert plan.order[:4] == [0, 4, 8, 12]
        assert plan.order[4:8] == [1, 5, 9, 13]
        assert sorted(plan.order) == list(range(16))

    def test_hbd_neighbours_are_in_different_tors(self):
        plan = deployment_strategy(n_nodes=64, k=2, nodes_per_tor=4)
        tree = FatTree(FatTreeConfig(n_nodes=64, nodes_per_tor=4, tors_per_domain=4))
        for a, b in zip(plan.order, plan.order[1:]):
            if abs(plan.position_of(a) - plan.position_of(b)) == 1:
                # neighbours on the same sub-line never share a ToR
                if (plan.position_of(a) + 1) % (64 // 4) != 0:
                    assert not tree.same_tor(a, b)

    def test_leftover_nodes_appended(self):
        plan = deployment_strategy(n_nodes=10, k=2, nodes_per_tor=4)
        assert sorted(plan.order) == list(range(10))
        assert plan.order[-2:] == [8, 9]

    def test_positions_and_edges(self):
        plan = deployment_strategy(n_nodes=8, k=2, nodes_per_tor=2)
        assert plan.position_of(plan.order[3]) == 3
        edges = plan.edges()
        # every node except the last two has a distance-1 and a distance-2 edge
        assert (plan.order[0], plan.order[1]) in edges
        assert (plan.order[0], plan.order[2]) in edges

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            DeploymentPlan(order=[0, 1, 1], k=2, nodes_per_tor=2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            deployment_strategy(0, 2, 4)
        with pytest.raises(ValueError):
            deployment_strategy(8, 0, 4)
        with pytest.raises(ValueError):
            deployment_strategy(8, 2, 0)


class TestOrchestrateDCNFree:
    def test_no_faults_full_packing(self):
        groups = orchestrate_dcn_free(list(range(16)), k=2, faulty=set(), nodes_per_group=4)
        assert len(groups) == 4
        assert groups[0].nodes == (0, 1, 2, 3)

    def test_fault_bridged_by_backup_link(self):
        groups = orchestrate_dcn_free(list(range(9)), k=2, faulty={4}, nodes_per_group=4)
        assert len(groups) == 2
        assert groups[0].nodes == (0, 1, 2, 3)
        assert groups[1].nodes == (5, 6, 7, 8)

    def test_unbridgeable_gap_splits_components(self):
        groups = orchestrate_dcn_free(
            list(range(12)), k=2, faulty={4, 5}, nodes_per_group=4
        )
        # components are [0..3] and [6..11] -> 1 + 1 groups
        assert len(groups) == 2
        assert groups[1].nodes == (6, 7, 8, 9)

    def test_k3_bridges_two_faults(self):
        groups = orchestrate_dcn_free(
            list(range(12)), k=3, faulty={4, 5}, nodes_per_group=4
        )
        # the two faults are bridged, so the healthy run 0-3,6-11 packs two
        # groups (with 10, 11 left over as the fragmentation remainder)
        assert len(groups) == 2
        assert groups[1].nodes == (6, 7, 8, 9)

    def test_leftover_nodes_not_grouped(self):
        groups = orchestrate_dcn_free(list(range(10)), k=2, faulty=set(), nodes_per_group=4)
        assert len(groups) == 2

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            orchestrate_dcn_free([0, 1], k=2, faulty=set(), nodes_per_group=0)


class TestPlacementFatTree:
    def setup_method(self):
        self.n_nodes = 128
        self.tree = FatTree(
            FatTreeConfig(n_nodes=self.n_nodes, nodes_per_tor=4, tors_per_domain=8)
        )
        self.plan = deployment_strategy(self.n_nodes, k=2, nodes_per_tor=4)

    def test_zero_constraints_equals_dcn_free(self):
        groups = placement_fat_tree(self.plan, self.tree, 0, set(), nodes_per_group=4)
        free = orchestrate_dcn_free(self.plan.order, 2, set(), 4)
        assert [g.nodes for g in groups] == [g.nodes for g in free]

    def test_full_constraints_confine_groups_to_domains(self):
        n_domains = self.tree.config.n_domains
        n_maxsubline = n_domains * 4
        groups = placement_fat_tree(
            self.plan, self.tree, n_maxsubline + n_domains, set(), nodes_per_group=4
        )
        for group in groups:
            domains = {self.tree.domain_of(n) for n in group.nodes}
            assert len(domains) == 1

    def test_alignment_constraint_expands_faults_to_tor(self):
        n_domains = self.tree.config.n_domains
        n_maxsubline = n_domains * 4
        faulty = {0}  # node 0 lives in ToR 0 together with nodes 1, 2, 3
        constrained = placement_fat_tree(
            self.plan, self.tree, n_maxsubline + n_domains, faulty, nodes_per_group=4
        )
        placed_nodes = {n for g in constrained for n in g.nodes}
        assert placed_nodes.isdisjoint({0, 1, 2, 3})

    def test_without_alignment_tor_mates_still_used(self):
        faulty = {0}
        groups = placement_fat_tree(self.plan, self.tree, 0, faulty, nodes_per_group=4)
        placed_nodes = {n for g in groups for n in g.nodes}
        assert 0 not in placed_nodes
        assert {1, 2, 3} <= placed_nodes

    def test_more_constraints_never_increase_capacity(self):
        faulty = {5, 17, 40, 77, 90}
        capacities = []
        for constraints in (0, 16, 32, 40):
            groups = placement_fat_tree(
                self.plan, self.tree, constraints, faulty, nodes_per_group=4
            )
            capacities.append(len(groups))
        assert capacities == sorted(capacities, reverse=True)

    def test_negative_constraints_rejected(self):
        with pytest.raises(ValueError):
            placement_fat_tree(self.plan, self.tree, -1, set(), 4)


class TestOrchestrateFatTree:
    def setup_method(self):
        self.n_nodes = 256
        self.tree = FatTree(
            FatTreeConfig(n_nodes=self.n_nodes, nodes_per_tor=4, tors_per_domain=16)
        )
        self.plan = deployment_strategy(self.n_nodes, k=2, nodes_per_tor=4)

    def test_satisfies_job_without_faults(self):
        job = JobSpec(total_gpus=768, tp_size=32, gpus_per_node=4)
        result = orchestrate_fat_tree(self.plan, self.tree, set(), job)
        assert result.satisfied
        assert result.placed_groups == job.groups_needed
        assert result.constraints_used > 0

    def test_placement_groups_have_requested_size(self):
        job = JobSpec(total_gpus=512, tp_size=16, gpus_per_node=4)
        result = orchestrate_fat_tree(self.plan, self.tree, set(), job)
        assert all(len(g) == job.nodes_per_group for g in result.placement)

    def test_no_faulty_node_is_placed(self):
        faulty = {3, 10, 77, 130, 200}
        job = JobSpec(total_gpus=512, tp_size=32, gpus_per_node=4)
        result = orchestrate_fat_tree(self.plan, self.tree, faulty, job)
        placed = {n for g in result.placement for n in g.nodes}
        assert placed.isdisjoint(faulty)

    def test_no_node_placed_twice(self):
        job = JobSpec(total_gpus=768, tp_size=32, gpus_per_node=4)
        result = orchestrate_fat_tree(self.plan, self.tree, set(), job)
        nodes = [n for g in result.placement for n in g.nodes]
        assert len(nodes) == len(set(nodes))

    def test_unsatisfiable_job_reports_failure(self):
        job = JobSpec(total_gpus=2048, tp_size=32, gpus_per_node=4)
        faulty = set(range(0, 200))
        result = orchestrate_fat_tree(self.plan, self.tree, faulty, job)
        assert not result.satisfied

    def test_constraints_relax_under_faults(self):
        job = JobSpec(total_gpus=960, tp_size=32, gpus_per_node=4)
        clean = orchestrate_fat_tree(self.plan, self.tree, set(), job)
        faulty = set(range(0, 256, 16))  # 16 spread-out faults
        degraded = orchestrate_fat_tree(self.plan, self.tree, faulty, job)
        assert degraded.satisfied
        assert degraded.constraints_used <= clean.constraints_used


class TestGreedyBaseline:
    def test_greedy_respects_faults(self):
        plan = deployment_strategy(64, k=2, nodes_per_tor=4)
        job = JobSpec(total_gpus=128, tp_size=16, gpus_per_node=4)
        faulty = {1, 2, 33}
        result = greedy_placement(plan, faulty, job, seed=3)
        placed = {n for g in result.placement for n in g.nodes}
        assert placed.isdisjoint(faulty)

    def test_greedy_meets_scale_when_possible(self):
        plan = deployment_strategy(64, k=2, nodes_per_tor=4)
        job = JobSpec(total_gpus=192, tp_size=16, gpus_per_node=4)
        result = greedy_placement(plan, set(), job, seed=0)
        assert result.satisfied
        assert result.placed_groups == job.groups_needed

    def test_greedy_is_deterministic_per_seed(self):
        plan = deployment_strategy(64, k=2, nodes_per_tor=4)
        job = JobSpec(total_gpus=128, tp_size=16, gpus_per_node=4)
        a = greedy_placement(plan, set(), job, seed=5)
        b = greedy_placement(plan, set(), job, seed=5)
        assert [g.nodes for g in a.placement] == [g.nodes for g in b.placement]


class TestOrchestratorFacade:
    def setup_method(self):
        self.orch = Orchestrator(
            n_nodes=256,
            k=2,
            fat_tree_config=FatTreeConfig(n_nodes=256, nodes_per_tor=4, tors_per_domain=16),
        )
        self.job = JobSpec(total_gpus=768, tp_size=32, gpus_per_node=4)

    def test_optimized_beats_greedy_on_cross_tor(self):
        _, report_opt = self.orch.place_and_report(self.job, method="optimized")
        _, report_greedy = self.orch.place_and_report(self.job, method="greedy", seed=2)
        assert report_opt.cross_tor_rate < report_greedy.cross_tor_rate

    def test_optimized_near_zero_without_faults(self):
        _, report = self.orch.place_and_report(self.job, method="optimized")
        assert report.cross_tor_rate < 0.02

    def test_greedy_cross_tor_near_dcn_share(self):
        _, report = self.orch.place_and_report(self.job, method="greedy", seed=1)
        share = self.orch.traffic_model.volumes.dcn_share
        assert report.cross_tor_rate > 0.5 * share

    def test_dcn_free_method(self):
        result = self.orch.place(self.job, method="dcn_free")
        assert result.method == "dcn_free"
        assert result.satisfied

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            self.orch.place(self.job, method="magic")

    def test_mismatched_config_rejected(self):
        with pytest.raises(ValueError):
            Orchestrator(n_nodes=64, fat_tree_config=FatTreeConfig(n_nodes=32))
