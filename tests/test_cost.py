"""Tests for the interconnect cost / power analysis (Tables 6, 8, Fig. 17d)."""

import pytest

from repro.cost.analysis import (
    aggregate_cost,
    aggregate_cost_sweep,
    cost_reduction_vs,
    interconnect_cost_table,
)
from repro.cost.architectures import (
    all_reference_boms,
    infinitehbd_bom,
    nvl36_bom,
    nvl72_bom,
    nvl36x2_bom,
    nvl576_bom,
    reference_bom,
    tpuv4_bom,
)
from repro.cost.components import COMPONENT_CATALOG, Component, component
from repro.hbd import InfiniteHBDArchitecture, NVLHBD


class TestComponents:
    def test_catalog_contains_table8_entries(self):
        for key in ("palomar_ocs", "nvlink_switch", "ocstrx_800g", "dac_1600g"):
            assert key in COMPONENT_CATALOG

    def test_component_lookup(self):
        assert component("ocstrx_800g").unit_cost_usd == 600.0
        with pytest.raises(KeyError):
            component("quantum_link")

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Component("x", -1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Component("x", 1.0, -1.0, 1.0)


class TestBOMs:
    def test_table6_per_gpu_costs_match_paper(self):
        """Exact Table 6 'Per-GPU Cost' column."""
        assert tpuv4_bom().cost_per_gpu == pytest.approx(1567.20, abs=0.5)
        assert nvl36_bom().cost_per_gpu == pytest.approx(9563.20, abs=0.5)
        assert nvl72_bom().cost_per_gpu == pytest.approx(9563.20, abs=0.5)
        assert nvl36x2_bom().cost_per_gpu == pytest.approx(17924.00, abs=0.5)
        assert nvl576_bom().cost_per_gpu == pytest.approx(30417.60, abs=0.5)
        assert infinitehbd_bom(2).cost_per_gpu == pytest.approx(2626.80, abs=0.5)
        assert infinitehbd_bom(3).cost_per_gpu == pytest.approx(3740.60, abs=0.5)

    def test_table6_per_gpu_power_matches_paper(self):
        assert tpuv4_bom().power_per_gpu == pytest.approx(19.39, abs=0.05)
        assert nvl72_bom().power_per_gpu == pytest.approx(75.95, abs=0.05)
        assert nvl576_bom().power_per_gpu == pytest.approx(413.45, abs=0.1)
        assert infinitehbd_bom(2).power_per_gpu == pytest.approx(48.10, abs=0.05)
        assert infinitehbd_bom(3).power_per_gpu == pytest.approx(72.05, abs=0.05)

    def test_table6_per_gBps_costs_match_paper(self):
        assert tpuv4_bom().cost_per_gpu_per_gBps == pytest.approx(5.22, abs=0.02)
        assert nvl72_bom().cost_per_gpu_per_gBps == pytest.approx(10.63, abs=0.02)
        assert infinitehbd_bom(2).cost_per_gpu_per_gBps == pytest.approx(3.28, abs=0.02)
        assert infinitehbd_bom(3).cost_per_gpu_per_gBps == pytest.approx(4.68, abs=0.02)

    def test_infinitehbd_is_the_cheapest_per_gBps(self):
        table = {b.name: b.cost_per_gpu_per_gBps for b in all_reference_boms()}
        assert min(table, key=table.get) == "InfiniteHBD(K=2)"

    def test_headline_cost_reductions(self):
        """Paper abstract: 31% of NVL-72 cost and ~63% of TPUv4 (per GBps)."""
        assert infinitehbd_bom(2).cost_per_gpu_per_gBps / nvl72_bom().cost_per_gpu_per_gBps == pytest.approx(0.31, abs=0.02)
        assert infinitehbd_bom(2).cost_per_gpu_per_gBps / tpuv4_bom().cost_per_gpu_per_gBps == pytest.approx(0.63, abs=0.02)

    def test_reference_bom_lookup(self):
        assert reference_bom("nvl-72").n_gpus == 72
        assert reference_bom("InfiniteHBD(K=3)").n_gpus == 4
        with pytest.raises(KeyError):
            reference_bom("unknown")

    def test_infinitehbd_bom_only_published_k(self):
        with pytest.raises(ValueError):
            infinitehbd_bom(4)

    def test_hpn_included_on_request(self):
        names = [b.name for b in all_reference_boms(include_hpn=True)]
        assert "Alibaba-HPN" in names
        assert "Alibaba-HPN" not in [b.name for b in all_reference_boms()]

    def test_bom_line_totals(self):
        bom = infinitehbd_bom(2)
        assert bom.total_cost_usd == pytest.approx(4 * 199.60 + 16 * 600 + 16 * 6.80)
        assert bom.total_power_watts == pytest.approx(4 * 0.1 + 16 * 12.0)


class TestCostTableAndAggregate:
    def test_interconnect_cost_table_rows(self):
        rows = interconnect_cost_table()
        names = [r.name for r in rows]
        assert "TPUv4" in names and "InfiniteHBD(K=2)" in names
        for row in rows:
            assert row.cost_per_gpu > 0
            assert row.cost_per_gBps > 0

    def test_cost_reduction_vs_nvl(self):
        """Paper: 3.24x cheaper than NVL-72, 1.59x cheaper than TPUv4."""
        assert cost_reduction_vs("InfiniteHBD(K=2)", "NVL-72") == pytest.approx(3.24, abs=0.05)
        assert cost_reduction_vs("InfiniteHBD(K=2)", "TPUv4") == pytest.approx(1.59, abs=0.05)

    def test_cost_reduction_unknown_name(self):
        with pytest.raises(KeyError):
            cost_reduction_vs("InfiniteHBD(K=2)", "Dojo")

    def test_aggregate_cost_increases_with_fault_ratio(self):
        arch = NVLHBD(72, gpus_per_node=4)
        low = aggregate_cost(arch, n_nodes=720, fault_ratio=0.0, n_samples=3)
        high = aggregate_cost(arch, n_nodes=720, fault_ratio=0.15, n_samples=3)
        assert high > low

    def test_infinitehbd_lowest_aggregate_cost(self):
        """Figure 17d: InfiniteHBD consistently exhibits the lowest aggregate cost."""
        infinite = aggregate_cost(
            InfiniteHBDArchitecture(k=2, gpus_per_node=4), 720, 0.05, n_samples=3
        )
        nvl = aggregate_cost(NVLHBD(72, gpus_per_node=4), 720, 0.05, n_samples=3)
        assert infinite < nvl

    def test_aggregate_cost_sweep_normalised(self):
        curves = aggregate_cost_sweep(
            n_nodes=360, fault_ratios=(0.0, 0.1), n_samples=2
        )
        assert curves["InfiniteHBD(K=2)"][0] == pytest.approx(100.0)
        for series in curves.values():
            assert len(series) == 2

    def test_aggregate_cost_sweep_raw(self):
        curves = aggregate_cost_sweep(
            architectures=[InfiniteHBDArchitecture(k=2, gpus_per_node=4)],
            n_nodes=360, fault_ratios=(0.0,), normalize=False, n_samples=2,
        )
        value = curves["InfiniteHBD(K=2)"][0]
        assert value == pytest.approx(infinitehbd_bom(2).cost_per_gpu, rel=0.05)

    def test_k2_cheaper_than_k3_at_low_fault_ratio(self):
        """Paper: K=2 is the better design below ~12% fault ratio."""
        k2 = aggregate_cost(InfiniteHBDArchitecture(k=2, gpus_per_node=4), 720, 0.02, n_samples=3)
        k3 = aggregate_cost(InfiniteHBDArchitecture(k=3, gpus_per_node=4), 720, 0.02, n_samples=3)
        assert k2 < k3
