"""Tests for the zero-copy shared-memory fan-out (repro.faults transport).

Covers the satellite checklist: ShmEventLog round trips on int- and
float-time traces, tiny-handle pickling, the ShmTimeline / PickledTimeline
transports, ShmTraceBatch, segment cleanup (re-attach after ``unlink`` must
fail), the single-serialization-per-(scenario, trace) regression, and the
chunked ``_execute_chunk`` worker entry point.
"""

import pickle

import numpy as np
import pytest

from repro.api.runner import (
    ExperimentRunner,
    _execute_chunk,
    _execute_payload,
    _round_robin_chunks,
)
from repro.api.runner import _TIMELINE_CACHE
from repro.api.spec import ArchitectureSpec, ExperimentSpec, Scenario, TraceSpec
from repro.faults.events import (
    EVENT_DTYPE,
    TRANSPORT_STATS,
    ShmEventLog,
    columnar_event_log,
    shm_available,
)
from repro.faults.timeline import PickledTimeline, ShmTimeline, serialize_timeline
from repro.faults.trace import FaultEvent, FaultTrace
from repro.mc.batch import BatchTraceConfig, ShmTraceBatch, sample_trace_batch

needs_shm = pytest.mark.skipif(not shm_available(), reason="no shared memory")


def make_trace(runs, n_nodes=8, duration_days=2.0):
    events = [
        FaultEvent(node_id=node, start_hour=float(start), end_hour=float(end))
        for node, start, end in runs
    ]
    return FaultTrace(
        n_nodes=n_nodes, duration_days=duration_days, events=events, gpus_per_node=4
    )


INT_RUNS = [(0, 1, 5), (3, 2, 8), (3, 6, 12), (7, 40, 44)]
FLOAT_RUNS = [(0, 0.25, 5.75), (3, 2.5, 8.125), (5, 3.0, 3.0625), (7, 40.5, 47.99)]


def assert_timelines_equal(rebuilt, original):
    assert rebuilt.n_nodes == original.n_nodes
    assert rebuilt.gpus_per_node == original.gpus_per_node
    assert rebuilt.duration_hours == original.duration_hours
    assert rebuilt.intervals == original.intervals
    assert np.array_equal(rebuilt.event_log, original.event_log)


class TestRoundRobinChunks:
    def test_partitions_every_index_exactly_once(self):
        chunks = _round_robin_chunks(10, 3)
        assert len(chunks) == 3
        assert sorted(i for chunk in chunks for i in chunk) == list(range(10))

    def test_more_chunks_than_items(self):
        assert _round_robin_chunks(2, 8) == [[0], [1]]

    def test_empty(self):
        assert _round_robin_chunks(0, 4) == []


@needs_shm
class TestShmEventLog:
    @pytest.mark.parametrize("runs", [INT_RUNS, FLOAT_RUNS], ids=["int", "float"])
    def test_round_trip_is_array_equal(self, runs):
        trace = make_trace(runs)
        log = columnar_event_log(trace.events, trace.duration_hours)
        handle = ShmEventLog.from_log(log)
        try:
            out = handle.log()
            assert out.dtype == EVENT_DTYPE
            assert np.array_equal(out, log)
        finally:
            handle.unlink()

    def test_handle_pickles_small_and_reattaches(self):
        log = columnar_event_log(make_trace(INT_RUNS).events, 48.0)
        handle = ShmEventLog.from_log(log)
        try:
            blob = pickle.dumps(handle)
            assert len(blob) < 256  # the whole point: a name, not the data
            assert np.array_equal(pickle.loads(blob).log(), log)
        finally:
            handle.unlink()

    def test_empty_log_round_trips(self):
        log = np.empty(0, dtype=EVENT_DTYPE)
        handle = ShmEventLog.from_log(log)
        try:
            assert len(handle.log()) == 0
        finally:
            handle.unlink()

    def test_unlink_releases_the_segment_name(self):
        log = columnar_event_log(make_trace(INT_RUNS).events, 48.0)
        handle = ShmEventLog.from_log(log)
        name, n_events = handle.name, handle.n_events
        handle.unlink()
        with pytest.raises(FileNotFoundError):
            ShmEventLog(name, n_events).log()

    def test_serialization_is_counted(self):
        log = columnar_event_log(make_trace(FLOAT_RUNS).events, 48.0)
        before = TRANSPORT_STATS.serialized
        handle = ShmEventLog.from_log(log)
        try:
            assert TRANSPORT_STATS.serialized == before + 1
        finally:
            handle.unlink()


class TestTimelineTransport:
    @pytest.mark.parametrize("runs", [INT_RUNS, FLOAT_RUNS], ids=["int", "float"])
    def test_transport_round_trip(self, runs):
        timeline = make_trace(runs).interval_timeline()
        transport = serialize_timeline(timeline)
        try:
            rebuilt = pickle.loads(pickle.dumps(transport)).timeline()
            assert_timelines_equal(rebuilt, timeline)
        finally:
            transport.unlink()

    @needs_shm
    def test_prefers_shared_memory(self):
        timeline = make_trace(INT_RUNS).interval_timeline()
        transport = serialize_timeline(timeline)
        try:
            assert isinstance(transport, ShmTimeline)
        finally:
            transport.unlink()

    def test_pickle_fallback_when_shm_unavailable(self, monkeypatch):
        import repro.faults.timeline as timeline_mod

        monkeypatch.setattr(timeline_mod, "shm_available", lambda: False)
        timeline = make_trace(FLOAT_RUNS).interval_timeline()
        transport = serialize_timeline(timeline)
        assert isinstance(transport, PickledTimeline)
        assert_timelines_equal(
            pickle.loads(pickle.dumps(transport)).timeline(), timeline
        )
        transport.unlink()  # no-op, must not raise

    def test_rebuilt_timeline_adopts_the_transported_log(self):
        timeline = make_trace(INT_RUNS).interval_timeline()
        transport = serialize_timeline(timeline)
        try:
            rebuilt = pickle.loads(pickle.dumps(transport)).timeline()
            # event_log is pre-seeded, not re-derived: same array object.
            assert "event_log" in rebuilt.__dict__
        finally:
            transport.unlink()


@needs_shm
class TestShmTraceBatch:
    def test_round_trip_is_bit_for_bit(self):
        batch = sample_trace_batch(
            BatchTraceConfig(n_seeds=3, n_nodes=32, duration_days=20, gpus_per_node=4)
        )
        shm_batch = ShmTraceBatch.from_batch(batch)
        assert shm_batch is not None
        try:
            rebuilt = pickle.loads(pickle.dumps(shm_batch)).batch()
            assert np.array_equal(rebuilt.log, batch.log)
            assert np.array_equal(rebuilt.event_offsets, batch.event_offsets)
            assert rebuilt.seeds == batch.seeds
            assert rebuilt.n_nodes == batch.n_nodes
            assert rebuilt.duration_hours == batch.duration_hours
            for index in range(batch.n_seeds):
                assert_timelines_equal(
                    rebuilt.timeline_for_seed(index), batch.timeline_for_seed(index)
                )
        finally:
            shm_batch.unlink()


def fanout_spec(num_seeds=1, tp_sizes=(16, 32)):
    return ExperimentSpec.of(
        scenario=Scenario(
            name="fanout",
            trace=TraceSpec(days=15, seed=348),
            architectures=(
                ArchitectureSpec(name="NVL-72"),
                ArchitectureSpec(name="InfiniteHBD(K=3)"),
            ),
            tp_sizes=tp_sizes,
            n_nodes=144,
            job_gpus=256,
        ),
        experiments=("waste",),
        num_seeds=num_seeds,
    )


@needs_shm
class TestRunnerFanout:
    def test_one_serialization_per_scenario_trace(self):
        spec = fanout_spec()
        TRANSPORT_STATS.reset()
        parallel = ExperimentRunner(spec, max_workers=4).run()
        assert TRANSPORT_STATS.serialized == 1  # 4 tasks, ONE shared segment
        serial = ExperimentRunner(spec, max_workers=1).run()
        assert parallel.results == serial.results

    def test_multi_seed_serializes_once_per_seed_trace(self):
        spec = fanout_spec(num_seeds=2)
        TRANSPORT_STATS.reset()
        ExperimentRunner(spec, max_workers=4).run()
        assert TRANSPORT_STATS.serialized == 2  # one segment per seed's trace

    def test_execute_chunk_rebuilds_timelines_from_transport(self):
        spec = fanout_spec(tp_sizes=(32,))
        runner = ExperimentRunner(spec)
        spec_dict = spec.to_dict()
        payloads = [dict(task, spec=spec_dict) for task in runner.tasks()]
        expected = [_execute_payload(dict(p)) for p in payloads]

        transports = runner._timeline_transports(payloads)
        assert len(transports) == 1
        chunk = {
            "spec": spec_dict,
            # Pickle-round-trip the transports exactly as the pool would:
            # the creator-side handle keeps its own view, a worker attaches.
            "timelines": pickle.loads(pickle.dumps(transports)),
            "tasks": [{k: v for k, v in p.items() if k != "spec"} for p in payloads],
        }
        saved = dict(_TIMELINE_CACHE)
        attached_before = TRANSPORT_STATS.attached
        try:
            _TIMELINE_CACHE.clear()
            rows = _execute_chunk(chunk)
            # The cleared memo forced a real shared-memory attach + rebuild.
            assert TRANSPORT_STATS.attached > attached_before
            assert rows == expected
        finally:
            _TIMELINE_CACHE.clear()
            _TIMELINE_CACHE.update(saved)
            for entry in transports:
                entry["transport"].unlink()
