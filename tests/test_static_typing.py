"""Static typing gates: the ``py.typed`` marker and the mypy strict split.

The CI ``static-analysis`` job runs mypy/ruff from ``requirements-dev.txt``;
these tests re-run the same commands so the gate is reproducible locally,
and skip cleanly when the pinned tools are not installed (the runtime
environment only needs numpy/networkx).
"""

import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules [tool.mypy] holds to ``--strict`` (everything else is parked
#: behind per-module ``ignore_errors`` until its PR flips it on).
STRICT_TARGETS = (
    "repro.faults.timeline",
    "repro.faults.events",
    "repro.api",
    "repro.scheduler",
    "repro.hbd.base",
    "repro.analysis",
    "repro.mc",
    "repro.cache",
    "repro.cli",
)


def test_py_typed_marker_ships_with_the_package():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert 'repro = ["py.typed"]' in pyproject


def test_pyproject_keeps_strict_targets_out_of_ignore_errors():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    start = pyproject.index("[tool.mypy]")
    mypy_section = pyproject[start:]
    for target in STRICT_TARGETS:
        assert f'"{target}"' not in mypy_section, (
            f"strict target {target} must not appear in the mypy overrides"
        )


def test_mypy_strict_split_is_clean():
    if importlib.util.find_spec("mypy") is None:
        pytest.skip("mypy not installed (pinned in requirements-dev.txt)")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_ruff_check_and_format_are_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed (pinned in requirements-dev.txt)")
    for argv in (["ruff", "check", "src"], ["ruff", "format", "--check", "src"]):
        proc = subprocess.run(argv, cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 0, " ".join(argv) + "\n" + proc.stdout + proc.stderr
