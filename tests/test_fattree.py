"""Tests for the Fat-Tree DCN model."""

import networkx as nx
import pytest

from repro.dcn.fattree import FatTree, FatTreeConfig


def make(n_nodes=64, p=4, tors_per_domain=4):
    return FatTree(FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=p,
                                 tors_per_domain=tors_per_domain))


class TestFatTreeConfig:
    def test_derived_counts(self):
        config = FatTreeConfig(n_nodes=64, nodes_per_tor=4, tors_per_domain=4)
        assert config.n_tors == 16
        assert config.nodes_per_domain == 16
        assert config.n_domains == 4

    def test_ceiling_division_for_partial_tors(self):
        config = FatTreeConfig(n_nodes=10, nodes_per_tor=4, tors_per_domain=2)
        assert config.n_tors == 3
        assert config.n_domains == 2

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            FatTreeConfig(n_nodes=0)
        with pytest.raises(ValueError):
            FatTreeConfig(n_nodes=4, nodes_per_tor=0)
        with pytest.raises(ValueError):
            FatTreeConfig(n_nodes=4, tors_per_domain=0)


class TestLocality:
    def test_tor_of(self):
        tree = make()
        assert tree.tor_of(0) == 0
        assert tree.tor_of(3) == 0
        assert tree.tor_of(4) == 1
        assert tree.tor_of(63) == 15

    def test_domain_of(self):
        tree = make()
        assert tree.domain_of(0) == 0
        assert tree.domain_of(15) == 0
        assert tree.domain_of(16) == 1

    def test_nodes_in_tor(self):
        tree = make()
        assert tree.nodes_in_tor(2) == [8, 9, 10, 11]

    def test_nodes_in_tor_partial_last(self):
        tree = FatTree(FatTreeConfig(n_nodes=10, nodes_per_tor=4, tors_per_domain=2))
        assert tree.nodes_in_tor(2) == [8, 9]

    def test_nodes_in_domain(self):
        tree = make()
        assert tree.nodes_in_domain(1) == list(range(16, 32))

    def test_same_tor_and_domain_predicates(self):
        tree = make()
        assert tree.same_tor(0, 3)
        assert not tree.same_tor(3, 4)
        assert tree.same_domain(0, 15)
        assert not tree.same_domain(15, 16)

    def test_network_distance_convention(self):
        tree = make()
        assert tree.network_distance(0, 0) == 0
        assert tree.network_distance(0, 1) == 1     # same ToR
        assert tree.network_distance(0, 4) == 3     # same domain, cross ToR
        assert tree.network_distance(0, 20) == 5    # cross domain

    def test_intra_tor_index(self):
        tree = make()
        assert tree.intra_tor_index(0) == 0
        assert tree.intra_tor_index(5) == 1
        assert tree.intra_tor_index(7) == 3

    def test_out_of_range_rejected(self):
        tree = make()
        with pytest.raises(ValueError):
            tree.tor_of(64)
        with pytest.raises(ValueError):
            tree.nodes_in_tor(99)
        with pytest.raises(ValueError):
            tree.nodes_in_domain(99)


class TestGraph:
    def test_graph_is_connected(self):
        g = make().graph()
        assert nx.is_connected(g)

    def test_graph_contains_all_layers(self):
        g = make().graph()
        kinds = nx.get_node_attributes(g, "kind")
        assert sum(1 for k in kinds.values() if k == "node") == 64
        assert sum(1 for k in kinds.values() if k == "tor") == 16
        assert sum(1 for k in kinds.values() if k == "aggregation") == 4
        assert sum(1 for k in kinds.values() if k == "core") == 1

    def test_graph_path_lengths_reflect_hierarchy(self):
        tree = make()
        g = tree.graph()
        assert nx.shortest_path_length(g, 0, 1) == 2        # via ToR
        assert nx.shortest_path_length(g, 0, 4) == 4        # via aggregation
        assert nx.shortest_path_length(g, 0, 20) == 6       # via core
