"""Tests for model configurations, FLOPs and communication-volume accounting."""

import pytest

from repro.training.comm import (
    CommVolumes,
    dp_allreduce_volume,
    ep_alltoall_volume_per_layer,
    iteration_comm_volumes,
    tp_allreduce_volume_per_layer,
)
from repro.training.flops import flops_per_iteration, flops_per_token
from repro.training.models import ModelConfig, gpt_moe_1t, llama31_405b


class TestModelConfigs:
    def test_llama_405b_parameter_count(self):
        model = llama31_405b()
        # MHA simplification inflates the official 405B count somewhat.
        assert 4.0e11 <= model.total_params <= 5.2e11
        assert model.activated_params == model.total_params
        assert not model.is_moe

    def test_gpt_moe_parameter_count(self):
        model = gpt_moe_1t()
        assert 1.0e12 <= model.total_params <= 1.3e12
        assert model.activated_params < model.total_params
        assert model.is_moe

    def test_gpt_moe_layer_split(self):
        model = gpt_moe_1t()
        assert model.n_moe_layers == 96
        assert model.n_dense_layers == 96

    def test_moe_layer_params_exceed_dense(self):
        model = gpt_moe_1t()
        assert model.moe_layer_params > model.dense_layer_params

    def test_params_per_gpu_shrinks_with_parallelism(self):
        model = llama31_405b()
        assert model.params_per_gpu(8, 8) < model.params_per_gpu(8, 4)
        assert model.params_per_gpu(16, 8) < model.params_per_gpu(8, 8)

    def test_ep_only_shards_expert_weights(self):
        model = gpt_moe_1t()
        with_ep = model.params_per_gpu(8, 8, ep=8)
        without_ep = model.params_per_gpu(8, 8, ep=1)
        assert with_ep < without_ep
        dense_only = (
            model.embedding_params
            + model.n_dense_layers * model.dense_layer_params
            + model.n_moe_layers * model.attention_params_per_layer
        ) / 64
        assert with_ep > dense_only

    def test_dense_model_ep_has_no_effect_on_activated(self):
        model = llama31_405b()
        assert model.activated_params == model.total_params

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 0, 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            ModelConfig("bad", 1, 1, 1, 1, 1, 1, n_experts=0)
        with pytest.raises(ValueError):
            ModelConfig("bad", 1, 1, 1, 1, 1, 1, n_experts=4, moe_top_k=5)
        with pytest.raises(ValueError):
            ModelConfig("bad", 1, 1, 1, 1, 1, 1, moe_layer_ratio=1.5)
        with pytest.raises(ValueError):
            llama31_405b().params_per_gpu(0, 1)


class TestFlops:
    def test_flops_per_token_dominated_by_6n(self):
        model = llama31_405b()
        assert flops_per_token(model) >= 6.0 * model.total_params
        assert flops_per_token(model) < 8.0 * model.total_params

    def test_moe_flops_use_activated_params(self):
        model = gpt_moe_1t()
        assert flops_per_token(model) < 6.0 * model.total_params

    def test_flops_per_iteration_scales_with_batch(self):
        model = llama31_405b()
        assert flops_per_iteration(model, 2048) == pytest.approx(
            2 * flops_per_iteration(model, 1024)
        )

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            flops_per_iteration(llama31_405b(), 0)


class TestCommFormulas:
    def test_tp_allreduce_matches_table3(self):
        """2 b s h (n-1)/n elements per layer."""
        volume = tp_allreduce_volume_per_layer(4, 2048, 12288, 8, bytes_per_element=1)
        assert volume == pytest.approx(2 * 4 * 2048 * 12288 * 7 / 8)

    def test_ep_alltoall_matches_table3(self):
        volume = ep_alltoall_volume_per_layer(4, 2048, 12288, 8, 2, bytes_per_element=1)
        expected = 2 * 4 * 2048 * 12288 * (7 / 8) * (2 / 8)
        assert volume == pytest.approx(expected)

    def test_ep_cheaper_than_tp_when_topk_less_than_n(self):
        """Table 3 conclusion: EP wins when k < n."""
        tp = tp_allreduce_volume_per_layer(1, 2048, 12288, 8)
        ep = ep_alltoall_volume_per_layer(1, 2048, 12288, 8, 2)
        assert ep < tp

    def test_degenerate_single_way(self):
        assert tp_allreduce_volume_per_layer(1, 10, 10, 1) == 0.0
        assert ep_alltoall_volume_per_layer(1, 10, 10, 1, 1) == 0.0
        assert dp_allreduce_volume(1e9, 1) == 0.0

    def test_dp_allreduce_volume(self):
        assert dp_allreduce_volume(1000, 4, bytes_per_element=1) == pytest.approx(
            2 * 1000 * 3 / 4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            tp_allreduce_volume_per_layer(1, 1, 1, 0)
        with pytest.raises(ValueError):
            ep_alltoall_volume_per_layer(1, 1, 1, 0, 1)
        with pytest.raises(ValueError):
            ep_alltoall_volume_per_layer(1, 1, 1, 2, 0)
        with pytest.raises(ValueError):
            dp_allreduce_volume(1, 0)


class TestIterationVolumes:
    def test_volumes_positive_for_parallel_training(self):
        volumes = iteration_comm_volumes(
            llama31_405b(), tp=16, pp=4, dp=16, ep=1, global_batch=2048
        )
        assert volumes.tp_bytes > 0
        assert volumes.ep_bytes == 0
        assert volumes.dp_bytes > 0
        assert 0.0 < volumes.dcn_share < 1.0

    def test_tp_volume_grows_with_tp(self):
        small = iteration_comm_volumes(llama31_405b(), 8, 4, 32, 1, 2048)
        large = iteration_comm_volumes(llama31_405b(), 32, 4, 8, 1, 2048)
        assert large.tp_bytes / 32 > 0  # defined
        assert large.tp_bytes * 1.0 >= small.tp_bytes  # (n-1)/n grows with n

    def test_ep_reduces_moe_tp_volume(self):
        moe = gpt_moe_1t()
        no_ep = iteration_comm_volumes(moe, 16, 8, 16, 1, 1536)
        with_ep = iteration_comm_volumes(moe, 16, 8, 16, 8, 1536)
        assert with_ep.tp_bytes < no_ep.tp_bytes
        assert with_ep.ep_bytes > 0

    def test_hbd_and_dcn_split(self):
        volumes = CommVolumes(tp_bytes=80.0, ep_bytes=20.0, dp_bytes=25.0)
        assert volumes.hbd_bytes == 100.0
        assert volumes.dcn_bytes == 25.0
        assert volumes.dcn_share == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            iteration_comm_volumes(llama31_405b(), 0, 1, 1, 1, 8)
        with pytest.raises(ValueError):
            iteration_comm_volumes(llama31_405b(), 1, 1, 1, 1, 0)
