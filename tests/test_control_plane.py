"""Tests for the control plane: node fabric manager and cluster manager."""

import pytest

from repro.control.cluster_manager import ClusterManager, RingState
from repro.control.fabric_manager import NodeFabricManager, NodeRole
from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.node import Node
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.hardware.ocstrx import PathState


def make_manager(node_id=1, n_nodes=16, k=2):
    topology = KHopRingTopology(KHopTopologyConfig(n_nodes=n_nodes, k=k))
    node = Node(node_id=node_id, n_gpus=4, n_bundles=max(2, k))
    return NodeFabricManager(node, topology), node, topology


class TestNodeFabricManager:
    def test_initial_state_unassigned(self):
        manager, _, _ = make_manager()
        assert manager.role is NodeRole.UNASSIGNED
        assert manager.total_reconfigurations == 0

    def test_configure_head(self):
        manager, node, _ = make_manager(node_id=0)
        latency = manager.configure(NodeRole.HEAD, right_peer=1)
        assert 60.0 <= latency <= 80.0
        assert node.bundle(0).state is PathState.LOOPBACK
        assert node.bundle(1).state is PathState.EXTERNAL_1
        assert manager.configuration.right_peer == 1

    def test_configure_middle_uses_backup_path_for_distance_two(self):
        manager, node, _ = make_manager(node_id=4)
        manager.configure(NodeRole.MIDDLE, left_peer=2, right_peer=5)
        assert node.bundle(0).state is PathState.EXTERNAL_2   # distance 2
        assert node.bundle(1).state is PathState.EXTERNAL_1   # distance 1

    def test_configure_tail_and_solo(self):
        manager, node, _ = make_manager(node_id=3)
        manager.configure(NodeRole.TAIL, left_peer=2)
        assert node.bundle(1).state is PathState.LOOPBACK
        manager.configure(NodeRole.SOLO)
        assert node.bundle(0).state is PathState.LOOPBACK
        assert node.bundle(1).state is PathState.LOOPBACK

    def test_release_goes_dark(self):
        manager, node, _ = make_manager(node_id=2)
        manager.configure(NodeRole.SOLO)
        manager.release()
        assert manager.role is NodeRole.UNASSIGNED
        assert node.bundle(0).state is PathState.DARK

    def test_missing_peer_rejected(self):
        manager, _, _ = make_manager()
        with pytest.raises(ValueError):
            manager.configure(NodeRole.MIDDLE, left_peer=0)
        with pytest.raises(ValueError):
            manager.configure(NodeRole.HEAD)

    def test_peer_beyond_k_hops_rejected(self):
        manager, _, _ = make_manager(node_id=0, k=2)
        with pytest.raises(ValueError):
            manager.configure(NodeRole.HEAD, right_peer=5)

    def test_failed_node_refuses_configuration(self):
        manager, node, _ = make_manager()
        node.fail()
        with pytest.raises(RuntimeError):
            manager.configure(NodeRole.SOLO)

    def test_bypass_right_repoints_link(self):
        manager, node, _ = make_manager(node_id=4)
        manager.configure(NodeRole.MIDDLE, left_peer=3, right_peer=5)
        latency = manager.bypass_right(6)  # node 5 failed; reach node 6 instead
        assert latency > 0
        assert manager.configuration.right_peer == 6
        assert node.bundle(1).state is PathState.EXTERNAL_2

    def test_bypass_left_requires_outward_link(self):
        manager, _, _ = make_manager(node_id=0)
        manager.configure(NodeRole.HEAD, right_peer=1)
        with pytest.raises(RuntimeError):
            manager.bypass_left(2)

    def test_reconfiguration_accounting(self):
        manager, _, _ = make_manager(node_id=4)
        manager.configure(NodeRole.MIDDLE, left_peer=3, right_peer=5)
        manager.bypass_right(6)
        assert manager.total_reconfigurations >= 2
        assert manager.total_switch_time_us >= 120.0

    def test_requires_two_bundles(self):
        topology = KHopRingTopology(KHopTopologyConfig(n_nodes=4, k=1))
        node = Node(node_id=0, n_gpus=4, n_bundles=1)
        with pytest.raises(ValueError):
            NodeFabricManager(node, topology)


class TestClusterManagerAllocation:
    def test_allocate_full_cluster(self):
        manager = ClusterManager(n_nodes=16, k=2, gpus_per_node=4)
        rings = manager.allocate_rings(tp_size=16)
        assert len(rings) == 4
        assert all(len(r.node_ids) == 4 for r in rings)
        assert not manager.free_nodes()

    def test_allocate_respects_max_rings(self):
        manager = ClusterManager(n_nodes=16, k=2)
        rings = manager.allocate_rings(tp_size=16, max_rings=2)
        assert len(rings) == 2
        assert len(manager.free_nodes()) == 8

    def test_allocate_skips_faulty_nodes(self):
        manager = ClusterManager(n_nodes=16, k=2)
        manager.handle_fault(0)
        rings = manager.allocate_rings(tp_size=16)
        placed = {n for r in rings for n in r.node_ids}
        assert 0 not in placed

    def test_allocation_programs_fabric_roles(self):
        manager = ClusterManager(n_nodes=8, k=2)
        rings = manager.allocate_rings(tp_size=16)
        ring = rings[0]
        head = manager.fabric_managers[ring.node_ids[0]]
        tail = manager.fabric_managers[ring.node_ids[-1]]
        middle = manager.fabric_managers[ring.node_ids[1]]
        assert head.role is NodeRole.HEAD
        assert tail.role is NodeRole.TAIL
        assert middle.role is NodeRole.MIDDLE

    def test_ring_lookup(self):
        manager = ClusterManager(n_nodes=8, k=2)
        manager.allocate_rings(tp_size=16)
        ring = manager.ring_of(2)
        assert ring is not None
        assert 2 in ring

    def test_release_returns_nodes_to_pool(self):
        manager = ClusterManager(n_nodes=8, k=2)
        rings = manager.allocate_rings(tp_size=16)
        manager.release_ring(rings[0].ring_id)
        assert rings[0].state is RingState.RELEASED
        assert len(manager.free_nodes()) == 4


class TestClusterManagerFaults:
    def test_fault_on_free_node_needs_no_reconfiguration(self):
        manager = ClusterManager(n_nodes=8, k=2)
        assert manager.handle_fault(5) is None
        assert 5 in manager.faulty_nodes

    def test_fault_in_ring_is_bypassed(self):
        manager = ClusterManager(n_nodes=8, k=2)
        rings = manager.allocate_rings(tp_size=32)  # one 8-node ring
        ring = rings[0]
        victim = ring.node_ids[3]
        latency = manager.handle_fault(victim)
        assert latency is not None and latency > 0
        assert ring.state is RingState.DEGRADED
        assert victim not in ring.node_ids
        # the two neighbours now point at each other over backup links
        left, right = ring.node_ids[2], ring.node_ids[3]
        assert manager.fabric_managers[left].configuration.right_peer == right
        assert manager.fabric_managers[right].configuration.left_peer == left

    def test_double_fault_breaks_k2_ring(self):
        manager = ClusterManager(n_nodes=8, k=2)
        rings = manager.allocate_rings(tp_size=32)
        ring = rings[0]
        manager.handle_fault(ring.node_ids[3])
        # the neighbour of the first victim is now 2 hops from its new peer;
        # failing it leaves a 3-hop gap that K=2 cannot bridge
        second_victim = ring.node_ids[3]
        manager.handle_fault(second_victim)
        assert ring.state is RingState.BROKEN

    def test_k3_survives_double_fault(self):
        manager = ClusterManager(n_nodes=8, k=3)
        rings = manager.allocate_rings(tp_size=32)
        ring = rings[0]
        manager.handle_fault(ring.node_ids[3])
        manager.handle_fault(ring.node_ids[3])
        assert ring.state is RingState.DEGRADED

    def test_head_fault_promotes_neighbour(self):
        manager = ClusterManager(n_nodes=8, k=2)
        rings = manager.allocate_rings(tp_size=32)
        ring = rings[0]
        head = ring.node_ids[0]
        manager.handle_fault(head)
        new_head = ring.node_ids[0]
        assert manager.fabric_managers[new_head].role is NodeRole.HEAD

    def test_repair_returns_node_to_pool(self):
        manager = ClusterManager(n_nodes=8, k=2)
        manager.allocate_rings(tp_size=32)
        victim = 3
        manager.handle_fault(victim)
        manager.handle_repair(victim)
        assert victim not in manager.faulty_nodes
        assert victim in manager.free_nodes()

    def test_events_are_logged(self):
        manager = ClusterManager(n_nodes=8, k=2)
        manager.allocate_rings(tp_size=32)
        manager.handle_fault(2)
        kinds = [e.kind for e in manager.events]
        assert "allocate" in kinds
        assert "fault" in kinds
        assert "bypass" in kinds


class TestClusterManagerReplay:
    def test_trace_replay_summary(self):
        trace8 = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=40, duration_days=60, seed=21)
        )
        trace4 = convert_trace_8gpu_to_4gpu(trace8, seed=21)
        manager = ClusterManager(n_nodes=64, k=2, gpus_per_node=4)
        summary = manager.replay_trace(trace4, tp_size=32)
        assert summary.fault_events > 0
        assert summary.repair_events > 0
        assert summary.bypass_reconfigurations <= summary.fault_events
        assert 0.0 <= summary.mean_ring_availability <= 1.0
        assert summary.total_switch_time_us > 0.0

    def test_replay_requires_large_enough_trace(self):
        trace8 = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=10, duration_days=10, seed=1)
        )
        trace4 = convert_trace_8gpu_to_4gpu(trace8, seed=1)
        manager = ClusterManager(n_nodes=128, k=2)
        with pytest.raises(ValueError):
            manager.replay_trace(trace4, tp_size=32)

    def test_k3_availability_at_least_k2(self):
        trace8 = generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=40, duration_days=90, seed=5)
        )
        trace4 = convert_trace_8gpu_to_4gpu(trace8, seed=5)
        k2 = ClusterManager(n_nodes=64, k=2).replay_trace(trace4, tp_size=32)
        k3 = ClusterManager(n_nodes=64, k=3).replay_trace(trace4, tp_size=32)
        assert k3.mean_ring_availability >= k2.mean_ring_availability - 1e-9
        assert k3.broken_rings <= k2.broken_rings
