"""Tests for the OCSTrx transceiver and bundle models."""

import pytest

from repro.hardware.ocstrx import (
    OCSTrx,
    OCSTrxBundle,
    OCSTrxConfig,
    PathState,
)


class TestOCSTrxConfig:
    def test_defaults_match_published_specs(self):
        config = OCSTrxConfig()
        assert config.line_rate_gbps == 800.0
        assert config.serdes_pairs == 8
        assert config.reconfig_latency_us == (60.0, 80.0)
        assert config.core_power_watts <= 3.2

    def test_total_power_under_qsfpdd_budget(self):
        config = OCSTrxConfig()
        assert config.total_power_watts < 12.0

    def test_line_rate_gbytes(self):
        assert OCSTrxConfig().line_rate_gBps == pytest.approx(100.0)


class TestOCSTrx:
    def test_starts_dark(self):
        trx = OCSTrx("t0")
        assert trx.state is PathState.DARK
        assert trx.active_bandwidth_gbps == 0.0

    def test_activate_loopback(self):
        trx = OCSTrx("t0")
        latency = trx.activate(PathState.LOOPBACK)
        assert trx.state is PathState.LOOPBACK
        assert 60.0 <= latency <= 80.0
        assert trx.active_bandwidth_gbps == 800.0

    def test_loopback_engages_cross_lane_matrix(self):
        trx = OCSTrx("t0")
        trx.activate(PathState.LOOPBACK)
        half = trx.config.n_lanes // 2
        assert trx.matrix.route(0) == half
        assert trx.matrix.route(half) == 0

    def test_external_requires_wiring(self):
        trx = OCSTrx("t0")
        with pytest.raises(RuntimeError):
            trx.activate(PathState.EXTERNAL_1)

    def test_activate_external_after_wiring(self):
        trx = OCSTrx("t0")
        trx.wire_external(PathState.EXTERNAL_1, peer=("node", 3))
        latency = trx.activate(PathState.EXTERNAL_1)
        assert 60.0 <= latency <= 80.0
        assert trx.active_peer == ("node", 3)

    def test_reactivating_same_path_is_free(self):
        trx = OCSTrx("t0")
        trx.activate(PathState.LOOPBACK)
        assert trx.activate(PathState.LOOPBACK) == 0.0

    def test_switching_resets_matrix(self):
        trx = OCSTrx("t0")
        trx.wire_external(PathState.EXTERNAL_2, peer=1)
        trx.activate(PathState.LOOPBACK)
        trx.activate(PathState.EXTERNAL_2)
        assert trx.matrix.is_identity()

    def test_wire_rejects_loopback_path(self):
        trx = OCSTrx("t0")
        with pytest.raises(ValueError):
            trx.wire_external(PathState.LOOPBACK, peer=1)

    def test_only_one_path_active_at_a_time(self):
        """Activating one external path disables the other (full bandwidth)."""
        trx = OCSTrx("t0")
        trx.wire_external(PathState.EXTERNAL_1, peer=1)
        trx.wire_external(PathState.EXTERNAL_2, peer=2)
        trx.activate(PathState.EXTERNAL_1)
        trx.activate(PathState.EXTERNAL_2)
        assert trx.state is PathState.EXTERNAL_2
        assert trx.active_bandwidth_gbps == 800.0

    def test_fail_and_repair(self):
        trx = OCSTrx("t0")
        trx.activate(PathState.LOOPBACK)
        trx.fail()
        assert trx.failed
        assert trx.state is PathState.DARK
        assert trx.active_bandwidth_gbps == 0.0
        with pytest.raises(RuntimeError):
            trx.activate(PathState.LOOPBACK)
        trx.repair()
        assert not trx.failed
        trx.activate(PathState.LOOPBACK)
        assert trx.state is PathState.LOOPBACK

    def test_history_records_reconfigurations(self):
        trx = OCSTrx("t0")
        trx.activate(PathState.LOOPBACK)
        trx.deactivate()
        history = trx.history
        assert len(history) == 2
        assert history[0].previous is PathState.DARK
        assert history[0].new is PathState.LOOPBACK
        assert history[1].new is PathState.DARK

    def test_deactivate_when_dark_is_free(self):
        trx = OCSTrx("t0")
        assert trx.deactivate() == 0.0


class TestOCSTrxBundle:
    def test_bundle_aggregate_bandwidth(self):
        bundle = OCSTrxBundle("b0", n_modules=8)
        bundle.activate(PathState.LOOPBACK)
        assert bundle.bandwidth_gbps == pytest.approx(6400.0)
        assert bundle.bandwidth_gBps == pytest.approx(800.0)

    def test_bundle_switches_as_a_unit(self):
        bundle = OCSTrxBundle("b0", n_modules=4)
        bundle.wire_external(PathState.EXTERNAL_1, peer=7)
        bundle.activate(PathState.EXTERNAL_1)
        assert bundle.state is PathState.EXTERNAL_1
        assert all(m.state is PathState.EXTERNAL_1 for m in bundle.modules)

    def test_bundle_latency_is_parallel_max(self):
        bundle = OCSTrxBundle("b0", n_modules=8)
        latency = bundle.activate(PathState.LOOPBACK)
        assert 60.0 <= latency <= 80.0

    def test_bundle_fail_propagates(self):
        bundle = OCSTrxBundle("b0", n_modules=2)
        bundle.fail()
        assert bundle.failed
        assert bundle.bandwidth_gbps == 0.0
        bundle.repair()
        assert not bundle.failed

    def test_bundle_peer_lookup(self):
        bundle = OCSTrxBundle("b0", n_modules=2)
        bundle.wire_external(PathState.EXTERNAL_2, peer=42)
        assert bundle.peer(PathState.EXTERNAL_2) == 42
        assert bundle.peer(PathState.EXTERNAL_1) is None

    def test_bundle_power_budget(self):
        bundle = OCSTrxBundle("b0", n_modules=8)
        assert bundle.power_watts == pytest.approx(8 * OCSTrxConfig().total_power_watts)
        bundle.fail()
        assert bundle.power_watts == 0.0

    def test_bundle_requires_at_least_one_module(self):
        with pytest.raises(ValueError):
            OCSTrxBundle("b0", n_modules=0)

    def test_bundle_dark_when_states_disagree(self):
        bundle = OCSTrxBundle("b0", n_modules=2)
        bundle.modules[0].activate(PathState.LOOPBACK)
        assert bundle.state is PathState.DARK
