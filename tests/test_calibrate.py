"""Calibration of the correlated generator from ingested CSV logs.

Fuzz/edge coverage for the :meth:`FaultTrace.from_csv` -> ``fit_correlated_config``
pipeline: overlapping domain outages, zero-duration repairs, out-of-order rows,
and a 50k-row synthetic Philly-style log round-trip.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.calibrate import (
    CalibrationResult,
    detect_domain_outages,
    fit_correlated_config,
)
from repro.faults.correlated import (
    CorrelatedFaultConfig,
    correlated_trace_with_outages,
    fault_domains,
)
from repro.faults.synthetic import SyntheticTraceConfig
from repro.faults.trace import FaultTrace


def _csv(rows):
    lines = ["node_id,start_hour,end_hour"]
    lines += [f"{n},{s},{e}" for n, s, e in rows]
    return "\n".join(lines) + "\n"


def _domain_outage_rows(domain_nodes, start, duration, jitter=0.0):
    return [
        (node, start + i * jitter, start + i * jitter + duration)
        for i, node in enumerate(domain_nodes)
    ]


# --------------------------------------------------------------------------
# outage detection on hand-built logs
# --------------------------------------------------------------------------
class TestDetectDomainOutages:
    def test_detects_a_clean_domain_outage(self):
        rows = _domain_outage_rows(range(8), start=10.0, duration=4.0)
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=32, duration_days=2)
        outages = detect_domain_outages(trace, domain_size=8)
        assert len(outages) == 1
        assert outages[0].nodes == tuple(range(8))
        assert outages[0].start_hour == 10.0
        assert outages[0].end_hour == 14.0

    def test_scattered_singles_are_not_an_outage(self):
        rows = [(n, 5.0 * n, 5.0 * n + 1.0) for n in range(8)]
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=32, duration_days=2)
        assert detect_domain_outages(trace, domain_size=8) == []

    def test_partial_coverage_respects_min_coverage(self):
        rows = _domain_outage_rows(range(4), start=3.0, duration=2.0)  # 4 of 8
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=32, duration_days=1)
        assert detect_domain_outages(trace, domain_size=8, min_coverage=0.75) == []
        half = detect_domain_outages(trace, domain_size=8, min_coverage=0.5)
        assert len(half) == 1 and half[0].nodes == (0, 1, 2, 3)

    def test_overlapping_outages_in_one_domain_merge_within_window(self):
        # Two monitors log the same incident with overlapping windows; the
        # ingest merge plus the start-window clustering yield one incident.
        rows = _domain_outage_rows(range(8), start=10.0, duration=4.0)
        rows += _domain_outage_rows(range(8), start=10.5, duration=5.0)
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=32, duration_days=2)
        outages = detect_domain_outages(trace, domain_size=8)
        assert len(outages) == 1
        assert outages[0].start_hour == 10.0
        assert outages[0].end_hour == 15.5

    def test_distant_outages_stay_separate_incidents(self):
        rows = _domain_outage_rows(range(8), start=10.0, duration=2.0)
        rows += _domain_outage_rows(range(8), start=30.0, duration=2.0)
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=32, duration_days=2)
        assert len(detect_domain_outages(trace, domain_size=8)) == 2

    def test_validation(self):
        trace = FaultTrace(n_nodes=8, duration_days=1, events=[])
        with pytest.raises(ValueError, match="min_coverage"):
            detect_domain_outages(trace, domain_size=8, min_coverage=0.0)
        with pytest.raises(ValueError, match="start_window_hours"):
            detect_domain_outages(trace, domain_size=8, start_window_hours=-1.0)


# --------------------------------------------------------------------------
# from_csv edge cases feeding calibration
# --------------------------------------------------------------------------
class TestFromCsvEdgeCases:
    def test_zero_duration_repairs_survive_ingest_and_fit(self):
        rows = [(n, 2.0, 2.0) for n in range(8)]                # instant repair
        rows += _domain_outage_rows(range(8, 16), start=9.0, duration=3.0)
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=16, duration_days=30)
        fit = fit_correlated_config(trace, domain_size=8)
        assert isinstance(fit, CalibrationResult)
        # The zero-duration incident contributes no downtime but must not
        # crash the lognormal fit (it is excluded from the duration sample).
        assert fit.config.repair_median_hours > 0.0
        assert math.isfinite(fit.repair_ks_distance)

    def test_out_of_order_rows_fit_identically(self):
        rows = _domain_outage_rows(range(8), start=5.0, duration=2.0)
        rows += _domain_outage_rows(range(8, 16), start=40.0, duration=6.0)
        shuffled = list(rows)
        random.Random(3).shuffle(shuffled)
        kwargs = {"n_nodes": 16, "duration_days": 30}
        ordered_fit = fit_correlated_config(
            FaultTrace.from_csv(_csv(rows), **kwargs), domain_size=8
        )
        shuffled_fit = fit_correlated_config(
            FaultTrace.from_csv(_csv(shuffled), **kwargs), domain_size=8
        )
        assert ordered_fit == shuffled_fit

    def test_empty_trace_fits_the_defaults(self):
        trace = FaultTrace.from_csv(_csv([]), n_nodes=16, duration_days=10)
        fit = fit_correlated_config(trace, domain_size=8)
        assert fit.n_domain_outages == 0
        assert fit.config.correlation == 0.0
        assert fit.correlated_downtime_share == 0.0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fit_never_crashes_on_arbitrary_valid_logs(self, raw):
        rows = [(n, round(s, 3), round(s + d, 3)) for n, s, d in raw]
        trace = FaultTrace.from_csv(_csv(rows), n_nodes=16, duration_days=10)
        fit = fit_correlated_config(trace, domain_size=4)
        assert 0.0 <= fit.config.correlation <= 1.0
        assert fit.config.domain_rate_per_day > 0.0
        assert fit.config.burst_multiplier >= 1.0
        assert math.isfinite(fit.fault_ratio_rel_error)
        assert len(fit.report()) == 5


# --------------------------------------------------------------------------
# round-trips
# --------------------------------------------------------------------------
class TestRoundTrips:
    def test_50k_row_philly_style_log_round_trips(self):
        # Synthesize a Philly-style operational log: heavy node churn plus
        # domain incidents, ~50k rows, then CSV -> trace -> CSV -> trace.
        rng = random.Random(42)
        n_nodes, horizon = 400, 90 * 24.0
        rows = []
        while len(rows) < 49_000:                       # independent churn
            node = rng.randrange(n_nodes)
            start = rng.uniform(0.0, horizon - 1.0)
            rows.append((node, round(start, 3), round(start + rng.uniform(0.1, 24.0), 3)))
        domains = fault_domains(n_nodes, 8)
        while len(rows) < 50_000:                       # domain incidents
            domain = domains[rng.randrange(len(domains))]
            start = rng.uniform(0.0, horizon - 8.0)
            rows.extend((n, round(start, 3), round(start + 6.0, 3)) for n in domain)
        text = _csv(rows)
        trace = FaultTrace.from_csv(
            text, n_nodes=n_nodes, duration_days=90, merge_overlaps=False
        )
        assert len(trace.events) == len(rows)
        again = FaultTrace.from_csv(
            trace.to_csv(), n_nodes=n_nodes, duration_days=90, merge_overlaps=False
        )
        assert again.events == trace.events
        fit = fit_correlated_config(trace, domain_size=8)
        assert fit.n_domain_outages > 0
        assert 0.0 < fit.config.correlation <= 1.0

    def test_calibration_recovers_a_known_generator(self):
        truth = CorrelatedFaultConfig(
            base=SyntheticTraceConfig(n_nodes=128, duration_days=180, seed=17),
            correlation=1.0,
            domain_size=8,
            domain_rate_per_day=0.5,
            repair_median_hours=4.0,
            repair_sigma=1.0,
        )
        trace, outages = correlated_trace_with_outages(truth)
        fit = fit_correlated_config(trace, domain_size=8)
        # Most generated incidents are re-detected, and the repair lognormal
        # is close (KS distance small on a ~90-incident sample).
        assert fit.n_domain_outages >= 0.7 * len(outages)
        assert fit.config.correlation > 0.2
        assert fit.repair_ks_distance < 0.25
        assert 1.0 <= fit.config.repair_median_hours <= 16.0

    def test_fit_survives_a_csv_round_trip(self):
        truth = CorrelatedFaultConfig(
            base=SyntheticTraceConfig(n_nodes=64, duration_days=60, seed=5),
            correlation=0.8,
            domain_rate_per_day=0.5,
        )
        trace, _ = correlated_trace_with_outages(truth)
        direct = fit_correlated_config(trace, domain_size=8)
        reloaded = FaultTrace.from_csv(
            trace.to_csv(),
            n_nodes=trace.n_nodes,
            duration_days=trace.duration_days,
            gpus_per_node=trace.gpus_per_node,
            merge_overlaps=False,
        )
        assert fit_correlated_config(reloaded, domain_size=8) == direct
