"""Tests for the content-addressed result cache (repro.cache).

Covers the satellite checklist: tier behaviour (memory LRU parity, disk
promote), the self-verifying on-disk entry format (corrupt / truncated /
mismatched entries evicted, never crashing), atomic concurrent writes, the
runner wiring (bit-for-bit cached == fresh, ``cache="off"`` byte-identical
to a cache-less run, version-in-key invalidation), and the ``repro cache``
CLI subcommand.
"""

import json
import multiprocessing

import pytest

import repro
from repro.api import (
    ArchitectureSpec,
    CorrelatedFaultSpec,
    ExperimentRunner,
    ExperimentSpec,
    Scenario,
    TraceSpec,
)
from repro.api.spec import WorkloadSpec
from repro.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_json,
    clear_disk_cache,
    clear_memory_cache,
    content_key,
    disk_cache_info,
)
from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets an empty disk tier under tmp and an empty memory tier."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    yield tmp_path / "cache"
    clear_memory_cache()


def small_spec(experiments=("waste",), **kwargs):
    scenario_overrides = {
        "trace": TraceSpec(days=15, seed=348),
        "architectures": (ArchitectureSpec(name="NVL-72"),),
        "tp_sizes": (32,),
        "n_nodes": 144,
        "job_gpus": 256,
    }
    scenario_overrides.update(kwargs.pop("scenario", {}))
    return ExperimentSpec.of(
        scenario=Scenario(name="cache-test", **scenario_overrides),
        experiments=experiments,
        **kwargs,
    )


ROWS = [{"experiment": "waste", "metrics": {"x": 0.5}}]


class TestContentKey:
    def test_key_is_order_independent(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_different_bodies_differ(self):
        assert content_key({"a": 1}) != content_key({"a": 2})


class TestTiers:
    def test_off_mode_is_a_no_op(self, isolated_cache):
        cache = ResultCache("off", isolated_cache)
        assert cache.put("00" * 32, ROWS) is False
        assert cache.get("00" * 32) is None
        assert disk_cache_info(isolated_cache).entries == 0

    def test_memory_round_trip_without_disk(self, isolated_cache):
        cache = ResultCache("memory", isolated_cache)
        key = content_key({"k": 1})
        assert cache.put(key, ROWS) is True
        assert cache.get(key) == ROWS
        assert disk_cache_info(isolated_cache).entries == 0

    def test_memory_hits_never_alias_the_stored_rows(self, isolated_cache):
        cache = ResultCache("memory", isolated_cache)
        key = content_key({"k": 2})
        cache.put(key, ROWS)
        first = cache.get(key)
        first[0]["metrics"]["x"] = 99.0
        assert cache.get(key) == ROWS

    def test_disk_round_trip_and_layout(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        key = content_key({"k": 3})
        assert cache.put(key, ROWS) is True
        path = cache.entry_path(key)
        assert path == isolated_cache / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"
        assert path.is_file()
        clear_memory_cache()
        assert cache.get(key) == ROWS

    def test_disk_hit_promotes_into_memory(self, isolated_cache):
        disk = ResultCache("disk", isolated_cache)
        key = content_key({"k": 4})
        disk.put(key, ROWS)
        clear_memory_cache()
        assert disk.get(key) == ROWS
        # Promoted: a memory-only cache now sees it too.
        assert ResultCache("memory", isolated_cache).get(key) == ROWS

    def test_memory_lru_evicts_oldest(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ENTRIES", "2")
        cache = ResultCache("memory", isolated_cache)
        keys = [content_key({"k": i}) for i in range(3)]
        for key in keys:
            cache.put(key, ROWS)
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) == ROWS
        assert cache.get(keys[2]) == ROWS

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        cache = ResultCache("disk", blocker / "cache")
        key = content_key({"k": 5})
        assert cache.put(key, ROWS) is False
        assert cache.get(key) == ROWS  # memory tier still served it

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown cache mode"):
            ResultCache("ttl")


class TestEntryValidation:
    def _entry(self, cache, key, **overrides):
        body = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "package_version": "0",
            "rows_sha256": content_key(ROWS[0]),  # wrong on purpose unless overridden
            "rows": ROWS,
        }
        body.update(overrides)
        return body

    def _write_and_get(self, isolated_cache, text):
        cache = ResultCache("disk", isolated_cache)
        key = content_key({"case": text[:16]})
        path = cache.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text if isinstance(text, str) else canonical_json(text))
        clear_memory_cache()
        return cache, key, path

    def test_corrupt_json_is_evicted(self, isolated_cache):
        cache, key, path = self._write_and_get(isolated_cache, "{not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_truncated_entry_is_evicted(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        key = content_key({"case": "truncated"})
        cache.put(key, ROWS)
        path = cache.entry_path(key)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        clear_memory_cache()
        assert cache.get(key) is None
        assert not path.exists()

    def test_schema_mismatch_is_evicted(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        key = content_key({"case": "schema"})
        cache.put(key, ROWS)
        entry = json.loads(cache.entry_path(key).read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        cache.entry_path(key).write_text(canonical_json(entry))
        clear_memory_cache()
        assert cache.get(key) is None
        assert not cache.entry_path(key).exists()

    def test_key_mismatch_is_evicted(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        key, other = content_key({"case": "key"}), content_key({"case": "other"})
        cache.put(other, ROWS)
        path = cache.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(cache.entry_path(other).read_text())  # entry claims ``other``
        clear_memory_cache()
        assert cache.get(key) is None
        assert not path.exists()

    def test_row_digest_mismatch_is_evicted(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        key = content_key({"case": "digest"})
        cache.put(key, ROWS)
        entry = json.loads(cache.entry_path(key).read_text())
        entry["rows"] = [{"metrics": {"x": 0.999}}]
        cache.entry_path(key).write_text(canonical_json(entry))
        clear_memory_cache()
        assert cache.get(key) is None

    def test_entry_records_package_version(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        key = content_key({"case": "version"})
        cache.put(key, ROWS)
        entry = json.loads(cache.entry_path(key).read_text())
        assert entry["package_version"] == str(getattr(repro, "__version__", "0"))

    def test_clear_disk_cache_only_touches_version_dirs(self, isolated_cache):
        cache = ResultCache("disk", isolated_cache)
        cache.put(content_key({"case": "clear"}), ROWS)
        stray = isolated_cache / "unrelated.json"
        stray.write_text("{}")
        assert clear_disk_cache(isolated_cache) == 1
        assert stray.exists()
        assert disk_cache_info(isolated_cache).entries == 0


def _hammer_put(directory: str, key: str, payload_value: int, iterations: int) -> None:
    cache = ResultCache("disk", directory)
    rows = [{"metrics": {"value": payload_value}}]
    for _ in range(iterations):
        cache.put(key, rows)


class TestConcurrentWriters:
    def test_no_torn_reads_under_two_process_writes(self, isolated_cache):
        key = content_key({"case": "race"})
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(target=_hammer_put, args=(str(isolated_cache), key, value, 60))
            for value in (1, 2)
        ]
        for proc in writers:
            proc.start()
        reader = ResultCache("disk", isolated_cache)
        try:
            seen = set()
            while any(proc.is_alive() for proc in writers):
                clear_memory_cache()
                rows = reader.get(key)
                if rows is not None:
                    seen.add(rows[0]["metrics"]["value"])
        finally:
            for proc in writers:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)
        # Every observed read was one writer's complete payload, never torn.
        assert seen <= {1, 2}
        clear_memory_cache()
        assert reader.get(key)[0]["metrics"]["value"] in (1, 2)


class TestRunnerWiring:
    def test_digest_ignores_cache_mode(self):
        digests = {small_spec(cache=mode).digest() for mode in ("off", "memory", "disk")}
        assert len(digests) == 1

    def test_spec_serialization_omits_cache_off(self):
        assert "cache" not in small_spec().to_dict()
        data = small_spec(cache="disk").to_dict()
        assert data["cache"] == "disk"
        assert ExperimentSpec.from_dict(data).cache == "disk"

    def test_cache_off_output_is_byte_identical_to_uncached(self):
        plain = ExperimentRunner(small_spec(), max_workers=1).run()
        off = ExperimentRunner(small_spec(), max_workers=1, cache="off").run()
        assert off.cache_stats is None
        assert off.to_json() == plain.to_json()
        assert "cache_stats" not in off.to_dict()

    def test_disk_cache_round_trip_is_bit_for_bit(self):
        spec = small_spec(experiments=("waste", "mfu"))
        fresh = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        n_tasks = len(ExperimentRunner(spec).tasks())
        assert fresh.cache_stats.hits == 0
        assert fresh.cache_stats.misses == n_tasks
        assert fresh.cache_stats.stored == n_tasks
        warm = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        assert warm.cache_stats.hits == n_tasks
        assert warm.cache_stats.misses == 0
        assert warm.results == fresh.results
        assert json.dumps([r.to_dict() for r in warm]) == json.dumps(
            [r.to_dict() for r in fresh]
        )

    def test_disk_hits_survive_memory_clear(self, isolated_cache):
        spec = small_spec(cache="disk")
        fresh = ExperimentRunner(spec, max_workers=1).run()
        clear_memory_cache()
        warm = ExperimentRunner(spec, max_workers=1).run()
        assert warm.cache_stats.hits == len(warm)
        assert warm.results == fresh.results

    def test_memory_mode_touches_no_disk(self, isolated_cache):
        spec = small_spec(cache="memory")
        ExperimentRunner(spec, max_workers=1).run()
        warm = ExperimentRunner(spec, max_workers=1).run()
        assert warm.cache_stats.hits == len(warm)
        assert disk_cache_info(isolated_cache).entries == 0

    def test_multi_seed_results_cache_bit_for_bit(self):
        spec = small_spec(num_seeds=3)
        fresh = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        warm = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        assert warm.cache_stats.hits == len(warm)
        assert warm.results == fresh.results
        assert fresh[0].metric("num_seeds") == 3

    def test_task_key_excludes_execution_knobs(self):
        spec = small_spec()
        runner = ExperimentRunner(spec, max_workers=1)
        payloads = [dict(t, spec=spec.to_dict()) for t in runner.tasks()]
        other = ExperimentRunner(spec, max_workers=4, cache="disk")
        assert runner._task_cache_key(payloads[0]) == other._task_cache_key(payloads[0])

    def test_task_key_includes_package_version(self, monkeypatch):
        spec = small_spec()
        runner = ExperimentRunner(spec)
        payload = dict(runner.tasks()[0], spec=spec.to_dict())
        before = runner._task_cache_key(payload)
        monkeypatch.setattr(repro, "__version__", "999.0-test", raising=False)
        assert runner._task_cache_key(payload) != before

    def test_correlated_spec_sweep_hit_equals_miss(self):
        # A correlated-overlay sweep (the blast_radius experiment fans out
        # placements x correlations internally) must cache bit-for-bit: the
        # warm run serves every task from the store and the rows agree.
        spec = small_spec(
            experiments=("blast_radius",),
            scenario={
                "trace": TraceSpec(
                    days=10, seed=348,
                    correlated=CorrelatedFaultSpec(domain_rate_per_day=1.0),
                ),
                "n_nodes": 64,
                "workload": WorkloadSpec(n_jobs=6, seed=1, median_work_hours=120.0),
            },
            options={"blast_radius": {"correlations": [0.0, 1.0]}},
        )
        fresh = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        warm = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        n_tasks = len(ExperimentRunner(spec).tasks())
        assert fresh.cache_stats.misses == n_tasks
        assert warm.cache_stats.hits == n_tasks
        assert warm.cache_stats.misses == 0
        assert warm.results == fresh.results
        assert json.dumps([r.to_dict() for r in warm]) == json.dumps(
            [r.to_dict() for r in fresh]
        )

    def test_correlated_overlay_changes_the_task_key(self):
        plain = small_spec()
        correlated = small_spec(
            scenario={"trace": TraceSpec(
                days=15, seed=348, correlated=CorrelatedFaultSpec(correlation=0.5)
            )},
        )
        runner = ExperimentRunner(plain, max_workers=1)
        key_plain = runner._task_cache_key(
            dict(runner.tasks()[0], spec=plain.to_dict())
        )
        other = ExperimentRunner(correlated, max_workers=1)
        key_corr = other._task_cache_key(
            dict(other.tasks()[0], spec=correlated.to_dict())
        )
        assert key_plain != key_corr

    def test_parallel_and_serial_agree_through_the_cache(self):
        spec = small_spec(
            experiments=("waste",),
            scenario={"tp_sizes": (16, 32), "architectures": (
                ArchitectureSpec(name="NVL-72"), ArchitectureSpec(name="InfiniteHBD(K=3)"),
            )},
        )
        parallel = ExperimentRunner(spec, max_workers=4, cache="disk").run()
        clear_memory_cache()
        clear_disk_cache()
        serial = ExperimentRunner(spec, max_workers=1, cache="disk").run()
        assert parallel.results == serial.results


class TestCacheCLI:
    def test_run_cache_flag_reports_stats(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec().to_json())
        assert main(["run", "--spec", str(spec_path), "--cache", "disk"]) == 0
        assert "cache[disk] hits=0 misses=1 stored=1" in capsys.readouterr().out
        assert main(["run", "--spec", str(spec_path), "--cache", "disk"]) == 0
        assert "cache[disk] hits=1 misses=0 stored=0" in capsys.readouterr().out

    def test_run_without_cache_flag_prints_no_stats(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec().to_json())
        assert main(["run", "--spec", str(spec_path)]) == 0
        assert "cache[" not in capsys.readouterr().out

    def test_cache_info_and_clear(self, capsys, isolated_cache):
        ResultCache("disk", isolated_cache).put(content_key({"cli": 1}), ROWS)
        assert main(["cache", "info", "--dir", str(isolated_cache)]) == 0
        out = capsys.readouterr().out
        assert f"directory={isolated_cache}" in out
        assert "entries=1" in out
        assert main(["cache", "clear", "--dir", str(isolated_cache)]) == 0
        assert "removed 1 disk entries" in capsys.readouterr().out
        assert disk_cache_info(isolated_cache).entries == 0

    def test_cache_info_defaults_to_env_dir(self, capsys, isolated_cache):
        assert main(["cache", "info"]) == 0
        assert f"directory={isolated_cache}" in capsys.readouterr().out
