"""Failure-injection property tests for the control plane and architectures.

Random fault / repair sequences are driven against the cluster manager and
the architecture models; the tests check structural invariants that must hold
after *every* step, not just in the curated scenarios of the unit tests.
"""

from hypothesis import given, settings, strategies as st

from repro.control.cluster_manager import ClusterManager, RingState
from repro.control.fabric_manager import NodeRole
from repro.hbd import InfiniteHBDArchitecture, default_architectures


# Sequences of (operation, node) pairs: True = fault, False = repair.
fault_repair_sequences = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=31)),
    min_size=1,
    max_size=40,
)


def _check_invariants(manager: ClusterManager) -> None:
    # 1. No node is assigned to two live rings.
    assignments = {}
    for ring in manager.rings.values():
        if ring.state is RingState.RELEASED:
            continue
        for node in ring.node_ids:
            assert node not in assignments, (
                f"node {node} in rings {assignments[node]} and {ring.ring_id}"
            )
            assignments[node] = ring.ring_id

    # 2. Free nodes are healthy and unassigned.
    free = set(manager.free_nodes())
    assert free.isdisjoint(manager.faulty_nodes)
    assert free.isdisjoint(assignments)

    # 3. Live ring members are healthy, and active/degraded rings keep their
    #    endpoints' fabric roles consistent.
    for ring in manager.rings.values():
        if ring.state not in (RingState.ACTIVE, RingState.DEGRADED):
            continue
        for node in ring.node_ids:
            assert not manager.nodes[node].failed
        if len(ring.node_ids) >= 2:
            head = manager.fabric_managers[ring.node_ids[0]]
            tail = manager.fabric_managers[ring.node_ids[-1]]
            assert head.role in (NodeRole.HEAD, NodeRole.SOLO)
            assert tail.role in (NodeRole.TAIL, NodeRole.SOLO)
        elif len(ring.node_ids) == 1:
            only = manager.fabric_managers[ring.node_ids[0]]
            assert only.role is NodeRole.SOLO

    # 4. Consecutive members of a live ring stay within K-hop reach.
    for ring in manager.rings.values():
        if ring.state not in (RingState.ACTIVE, RingState.DEGRADED):
            continue
        for a, b in zip(ring.node_ids, ring.node_ids[1:]):
            assert manager.topology.has_link(a, b)


class TestClusterManagerUnderRandomFaults:
    @given(fault_repair_sequences)
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_after_every_step(self, sequence):
        manager = ClusterManager(n_nodes=32, k=2, gpus_per_node=4)
        manager.allocate_rings(tp_size=16)
        for is_fault, node in sequence:
            if is_fault:
                manager.handle_fault(node)
            else:
                manager.handle_repair(node)
            _check_invariants(manager)

    @given(fault_repair_sequences)
    @settings(max_examples=30, deadline=None)
    def test_reallocation_after_chaos_is_consistent(self, sequence):
        manager = ClusterManager(n_nodes=32, k=3, gpus_per_node=4)
        manager.allocate_rings(tp_size=32)
        for is_fault, node in sequence:
            if is_fault:
                manager.handle_fault(node)
            else:
                manager.handle_repair(node)
        # Release everything and re-allocate on the surviving nodes.
        manager.release_all()
        rings = manager.allocate_rings(tp_size=32)
        _check_invariants(manager)
        placed = [n for r in rings for n in r.node_ids]
        assert len(placed) == len(set(placed))
        assert set(placed).isdisjoint(manager.faulty_nodes)

    @given(st.sets(st.integers(min_value=0, max_value=31), max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_bypasses_never_exceed_faults(self, fault_nodes):
        manager = ClusterManager(n_nodes=32, k=2, gpus_per_node=4)
        manager.allocate_rings(tp_size=16)
        bypasses = 0
        for node in sorted(fault_nodes):
            if manager.handle_fault(node) is not None:
                bypasses += 1
        assert bypasses <= len(fault_nodes)
        _check_invariants(manager)


class TestArchitecturesUnderRandomFaults:
    @given(
        st.lists(st.integers(min_value=0, max_value=143), min_size=0, max_size=80),
        st.sampled_from([8, 16, 32]),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_faults_never_increase_capacity(self, fault_order, tp):
        """Capacity is monotonically non-increasing as faults accumulate."""
        for arch in (
            InfiniteHBDArchitecture(k=2, gpus_per_node=4),
            InfiniteHBDArchitecture(k=3, gpus_per_node=4),
        ):
            faults = set()
            previous = arch.usable_gpus(144, faults, tp)
            for node in fault_order:
                faults.add(node)
                current = arch.usable_gpus(144, faults, tp)
                assert current <= previous
                previous = current

    @given(st.sets(st.integers(min_value=0, max_value=143), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_repair_restores_capacity(self, faults):
        """Repairing every fault returns each architecture to a fault-free state."""
        for arch in default_architectures(4):
            degraded = arch.usable_gpus(144, faults, 32)
            restored = arch.usable_gpus(144, set(), 32)
            assert degraded <= restored
            assert restored == arch.usable_gpus(144, set(), 32)
