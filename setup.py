"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``python setup.py develop`` works in offline environments where the ``wheel``
package (needed by pip's modern editable-install path) is unavailable.
"""

from setuptools import setup

setup()
